//! Worker threads: Figure 3's scheduling loop over real OS threads.
//!
//! Each worker owns a collection of deques, one active at a time:
//!
//! * With an **assigned task**, the worker polls it. Children spawned
//!   during the poll (fork2's right children) and wake-ups delivered on
//!   this thread land in a thread-local pending buffer, flushed to the
//!   bottom of the active deque after the poll — then resumed vertices are
//!   injected (`addResumedVertices`), and the next assigned task is popped
//!   from the bottom.
//! * Without one, the worker releases its active deque (freeing it when it
//!   has no suspensions), switches to a ready deque if it has one, checks
//!   the global injector, and otherwise becomes a thief stealing from a
//!   random deque of the global registry, starting a fresh deque on
//!   success.
//!
//! Suspensions: a latency future calls [`register_latency`] during its
//! poll, which books a timer entry against the current (worker, active
//! deque) pair and marks the poll as suspending; after the poll the worker
//! increments the deque's `suspendCtr`. When the timer fires, the whole
//! burst of this worker's expirations arrives in its inbox as **one batch
//! of [`ResumeEvent`]s**; draining it is the paper's `callback(v, q)` for
//! every event, and the batched reinjection through a pfor task is
//! `addResumedVertices()`.
//!
//! Hot-path discipline: a poll costs one TLS access (install current task,
//! poll, read back the suspend count — all under a single `TLS.with`), and
//! counters are bumped on the worker's own cache-padded block.

use std::cell::{Cell, RefCell};
use std::sync::{Arc, Weak};
use std::task::Waker;
use std::time::{Duration, Instant};

use lhws_deque::{DequeId, Steal, WorkerHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{LatencyMode, StealPolicy};
use crate::fault::FaultInjector;
use crate::metrics::CounterBlock;
use crate::runtime::RtInner;
use crate::steal::PolicyState;
use crate::task::{Task, TaskRef};
use crate::timer::{ResumeEvent, TimerEntry};
use crate::trace::{EventKind, StealOutcome, SuspendKind, Tracer, NONE_ID};

/// Sentinel for "no active deque" in the TLS cell.
const NO_DEQUE: usize = usize::MAX;

/// How many times a steal attempt re-tries the same deque when the
/// underlying pop-top reports a benign race ([`Steal::Retry`]) before
/// giving the attempt up. Retrying the same victim a few times is cheaper
/// than a fresh random victim draw while the race window is tiny; an
/// unbounded loop could livelock against a fast owner.
const STEAL_RETRIES: usize = 4;

/// Thread-local context installed on worker threads.
struct WorkerTls {
    rt: Weak<RtInner>,
    index: usize,
    active_local: Cell<usize>,
    current_task: RefCell<Option<TaskRef>>,
    /// Latency registrations made during the current poll.
    suspend_count: Cell<u32>,
    /// Tasks enabled on this thread during the current poll (fork2 spawns,
    /// join wake-ups, pfor unfolding); flushed to the active deque.
    pending_local: RefCell<Vec<TaskRef>>,
    /// Running count of trace suspension tags handed out by this worker
    /// (only advanced while tracing is enabled).
    suspend_seq: Cell<u64>,
}

/// Allocates a trace suspension tag: worker-unique by construction
/// (worker index in the high bits, per-worker counter in the low 40), and
/// never `0` — `0` is the "untraced" sentinel carried through
/// [`TimerEntry::seq`] / [`ResumeEvent::seq`].
fn alloc_seq(tls: &WorkerTls) -> u64 {
    let n = tls.suspend_seq.get() + 1;
    tls.suspend_seq.set(n);
    ((tls.index as u64 + 1) << 40) | (n & ((1 << 40) - 1))
}

thread_local! {
    static TLS: RefCell<Option<WorkerTls>> = const { RefCell::new(None) };
}

/// If the current thread is a worker of `rt`, buffer `task` for its active
/// deque and return true. Used for both wake-up requeues and fresh
/// spawns; `bump_spawned` distinguishes them so the worker-local
/// `tasks_spawned` counter only counts the latter.
pub(crate) fn enqueue_local_if_same_runtime(
    rt: &Arc<RtInner>,
    task: &TaskRef,
    bump_spawned: bool,
) -> bool {
    TLS.with(|t| {
        let borrow = t.borrow();
        match &*borrow {
            Some(tls) if std::ptr::eq(tls.rt.as_ptr(), Arc::as_ptr(rt)) => {
                if bump_spawned {
                    let c = rt.counters.worker(tls.index);
                    c.bump(&c.tasks_spawned);
                }
                tls.pending_local.borrow_mut().push(task.clone());
                true
            }
            _ => false,
        }
    })
}

/// Buffers a freshly created (QUEUED) task for the current worker's active
/// deque. Panics when called off a worker thread.
pub(crate) fn spawn_local(task: TaskRef) {
    TLS.with(|t| {
        let borrow = t.borrow();
        let tls = borrow
            .as_ref()
            .expect("spawn/fork2 requires a worker context: run inside Runtime::block_on");
        tls.pending_local.borrow_mut().push(task);
    });
}

/// The runtime owning the current worker thread, if any.
pub(crate) fn current_runtime() -> Option<Arc<RtInner>> {
    TLS.with(|t| t.borrow().as_ref().and_then(|tls| tls.rt.upgrade()))
}

/// The runtime's latency mode as seen from the current thread.
pub(crate) fn current_latency_mode() -> Option<LatencyMode> {
    current_runtime().map(|rt| rt.config.mode)
}

/// The current thread's worker index, when it is a worker of `rt`. Lets
/// driver hooks route trace events to the worker's own SPSC ring (whose
/// single-producer contract requires being that thread) and counter bumps
/// to its cache-padded block.
pub(crate) fn current_worker_index_in(rt: &Arc<RtInner>) -> Option<usize> {
    TLS.with(|t| {
        t.borrow()
            .as_ref()
            .and_then(|tls| std::ptr::eq(tls.rt.as_ptr(), Arc::as_ptr(rt)).then_some(tls.index))
    })
}

/// Registers a latency expiration for the currently polled task against
/// the current active deque, marking this poll as suspending. Returns
/// false (no registration) off worker threads.
pub(crate) fn register_latency(deadline: Instant) -> bool {
    TLS.with(|t| {
        let borrow = t.borrow();
        let Some(tls) = borrow.as_ref() else {
            return false;
        };
        let Some(rt) = tls.rt.upgrade() else {
            return false;
        };
        let task = match &*tls.current_task.borrow() {
            Some(task) => task.clone(),
            None => return false,
        };
        let local_deque = tls.active_local.get();
        if local_deque == NO_DEQUE {
            return false;
        }
        let mut seq = 0;
        if let Some(tr) = &rt.tracer {
            seq = alloc_seq(tls);
            tr.record(
                tls.index,
                EventKind::Suspend {
                    deque: local_deque as u32,
                    kind: SuspendKind::Timer,
                    seq,
                },
            );
        }
        rt.timer().register(TimerEntry {
            deadline,
            task,
            worker: tls.index,
            local_deque,
            seq,
        });
        tls.suspend_count.set(tls.suspend_count.get() + 1);
        let c = rt.counters.worker(tls.index);
        c.bump(&c.suspensions);
        true
    })
}

/// A task's suspension placement: which runtime/worker/deque it suspended
/// on, recorded when a suspending operation registers during a poll.
///
/// **Contract: one registration pairs with exactly one resume event.**
/// Whoever holds the registration owes the deque one [`ResumeEvent`] —
/// delivered by [`SuspensionRegistration::resume`] on completion, *or* on
/// cancellation/drop of the waiting operation — so the deque's
/// `suspendCtr` always balances. Spurious re-polls while registered must
/// keep the original registration rather than creating a second one.
pub(crate) struct SuspensionRegistration {
    rt: Weak<RtInner>,
    worker: usize,
    local_deque: usize,
    task: TaskRef,
    /// Trace tag of the paired `Suspend` event (`0` when untraced).
    seq: u64,
}

impl SuspensionRegistration {
    /// Delivers the one resume event owed by this registration — the
    /// paper's `callback(v, q)` — to the owning worker's inbox.
    pub fn resume(self) {
        if let Some(rt) = self.rt.upgrade() {
            rt.deliver_resume(
                self.worker,
                ResumeEvent {
                    task: self.task,
                    local_deque: self.local_deque,
                    seq: self.seq,
                    enabled_at: 0,
                },
            );
        }
    }
}

/// How a suspending operation waits for its completion.
pub(crate) enum SuspendWait {
    /// Suspended on a worker deque ([`SuspensionRegistration`]'s one
    /// registration ↔ one resume event contract applies).
    Deque(SuspensionRegistration),
    /// Off-worker or blocking mode: plain waker-based waiting.
    Waker(Waker),
}

impl SuspendWait {
    /// Completes the wait: delivers the owed resume event (deque path) or
    /// wakes the task (waker path).
    pub fn notify(self) {
        match self {
            SuspendWait::Deque(reg) => reg.resume(),
            SuspendWait::Waker(w) => w.wake(),
        }
    }
}

/// Registers the currently polled task as suspended on its active deque,
/// falling back to waker-based waiting off worker threads or in blocking
/// mode. This is the **single** registration entry point for externally
/// completed operations (`external_op`, channel receives).
///
/// On the deque path this bumps the poll's suspend count (raising the
/// deque's `suspendCtr` after the poll); the returned wait must then be
/// notified exactly once — see [`SuspensionRegistration`]'s contract.
pub(crate) fn register_suspension(waker: &Waker) -> SuspendWait {
    match try_register_deque() {
        Some(reg) => SuspendWait::Deque(reg),
        None => SuspendWait::Waker(waker.clone()),
    }
}

/// The deque half of [`register_suspension`]: `None` off worker threads,
/// in blocking mode, or outside a poll.
fn try_register_deque() -> Option<SuspensionRegistration> {
    TLS.with(|t| {
        let borrow = t.borrow();
        let tls = borrow.as_ref()?;
        let rt = tls.rt.upgrade()?;
        if rt.config.mode != crate::config::LatencyMode::Hide {
            return None;
        }
        let task = tls.current_task.borrow().clone()?;
        let local_deque = tls.active_local.get();
        if local_deque == NO_DEQUE {
            return None;
        }
        let mut seq = 0;
        if let Some(tr) = &rt.tracer {
            seq = alloc_seq(tls);
            tr.record(
                tls.index,
                EventKind::Suspend {
                    deque: local_deque as u32,
                    kind: SuspendKind::External,
                    seq,
                },
            );
        }
        tls.suspend_count.set(tls.suspend_count.get() + 1);
        let c = rt.counters.worker(tls.index);
        c.bump(&c.suspensions);
        Some(SuspensionRegistration {
            rt: tls.rt.clone(),
            worker: tls.index,
            local_deque,
            task,
            seq,
        })
    })
}

/// One deque owned by this worker. The owner end lives here forever; the
/// thief end was registered in the global registry at allocation.
struct OwnedDeque {
    global: DequeId,
    handle: WorkerHandle<TaskRef>,
    suspend_ctr: u64,
    resumed: Vec<TaskRef>,
    in_ready: bool,
    in_resumed: bool,
    freed: bool,
}

/// A worker thread's state and main loop.
pub(crate) struct Worker {
    rt: Arc<RtInner>,
    index: usize,
    owned: Vec<OwnedDeque>,
    active: Option<usize>,
    ready: std::collections::VecDeque<usize>,
    resumed_list: Vec<usize>,
    empty: Vec<usize>,
    live_deques: u64,
    assigned: Option<TaskRef>,
    rng: StdRng,
    /// Reused buffer for inbox batch drains (swap target).
    inbox_scratch: Vec<ResumeEvent>,
    /// Last-published advertisement; skipping identical publishes keeps
    /// the hot loop off the shared_steal mutex.
    advertised: Vec<DequeId>,
    /// Reused build buffer for [`Worker::advertise`].
    adv_scratch: Vec<DequeId>,
    /// Cached from `rt.tracer` so every event site is one local branch;
    /// `None` (tracing disabled) costs nothing on the hot path.
    tracer: Option<Arc<Tracer>>,
    /// Cached from `rt.faults` — same zero-cost-when-`None` pattern as
    /// the tracer. See [`crate::fault`].
    faults: Option<Arc<FaultInjector>>,
    /// Thief-local steal-policy state (probe budget, batch cap, victim
    /// affinity). See [`crate::steal`].
    policy: PolicyState,
    /// Reused landing buffer for steal-half batches: the first task
    /// becomes the assigned task, the rest is pushed into the fresh
    /// deque by [`Worker::land_batch_overflow`].
    steal_scratch: Vec<TaskRef>,
}

impl Worker {
    pub fn new(rt: Arc<RtInner>, index: usize) -> Self {
        let seed = rt
            .config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
        let tracer = rt.tracer.clone();
        let faults = rt.faults.clone();
        let policy = PolicyState::new(rt.config.steal_policy, rt.config.steal_batch_limit);
        Worker {
            rt,
            index,
            owned: Vec::new(),
            active: None,
            ready: std::collections::VecDeque::new(),
            resumed_list: Vec::new(),
            empty: Vec::new(),
            live_deques: 0,
            assigned: None,
            rng: StdRng::seed_from_u64(seed),
            inbox_scratch: Vec::new(),
            advertised: Vec::new(),
            adv_scratch: Vec::new(),
            tracer,
            faults,
            policy,
            steal_scratch: Vec::new(),
        }
    }

    /// This worker's cache-padded counter block.
    #[inline]
    fn ctr(&self) -> &CounterBlock {
        self.rt.counters.worker(self.index)
    }

    /// Records a trace event on this worker's ring; one never-taken branch
    /// when tracing is disabled.
    #[inline]
    fn trace(&self, kind: EventKind) {
        if let Some(t) = &self.tracer {
            t.record(self.index, kind);
        }
    }

    /// Runs the scheduling loop until shutdown.
    pub fn run(mut self) {
        self.install_tls();
        self.rt.sleepers.register(self.index);
        // Line 26: every worker starts with an empty active deque.
        let q = self.new_deque();
        self.activate(q);

        loop {
            if self.rt.is_shutdown() {
                break;
            }
            if let Some(f) = &self.faults {
                // Outside poll_task's catch_unwind: this panic escapes the
                // scheduler loop itself and exercises runtime supervision.
                if f.worker_loop_should_panic() {
                    panic!("injected worker-loop panic (fault plan)");
                }
            }
            if let Some(task) = self.assigned.take() {
                self.poll_task(task);
                self.flush_pending();
                self.drain_resumes();
                self.maybe_forced_switch();
                if let Some(a) = self.active {
                    self.assigned = self.owned[a].handle.pop_bottom();
                }
            } else {
                self.idle_step();
            }
        }
        self.clear_tls();
    }

    /// Lines 41–56 plus injector check and parking.
    fn idle_step(&mut self) {
        self.release_active_if_empty();
        if self.active.is_none() {
            if let Some(q) = self.pop_ready() {
                self.ctr().bump(&self.ctr().deque_switches);
                self.trace(EventKind::DequeSwitch { deque: q as u32 });
                self.activate(q);
            } else if let Some(task) = self.rt.pop_injected() {
                self.assigned = Some(task);
                let q = self.new_deque();
                self.activate(q);
            } else {
                // Thief mode: a bounded burst of probes, sized by the steal
                // policy (a fixed baseline, or ramped under contention by
                // Adaptive). Every probe is one full steal attempt (one
                // `steals_attempted` bump paired with exactly one `Steal`
                // trace event); the exponential backoff between failed
                // probes keeps a pack of idle thieves from hammering the
                // registry shards.
                let probes = self.policy.probe_budget();
                for probe in 0..probes {
                    self.ctr().bump(&self.ctr().steals_attempted);
                    let got = self.try_steal();
                    self.policy.record_attempt(got.is_some());
                    if let Some(task) = got {
                        self.ctr().bump(&self.ctr().steals_succeeded);
                        self.assigned = Some(task);
                        let q = self.new_deque();
                        self.activate(q);
                        self.land_batch_overflow(q);
                        break;
                    }
                    // Between failed probes: bail out to the outer step if
                    // anything newsworthy arrived, else back off briefly.
                    if self.rt.is_shutdown()
                        || self.rt.injector_nonempty()
                        || self.rt.inbox_nonempty(self.index)
                    {
                        break;
                    }
                    for _ in 0..(1usize << probe.min(6)) {
                        std::hint::spin_loop();
                    }
                }
            }
        }
        self.drain_resumes();
        self.flush_pending();
        if self.assigned.is_none() {
            if let Some(a) = self.active {
                self.assigned = self.owned[a].handle.pop_bottom();
            }
        }
        if self.assigned.is_none() && self.active.is_none() && self.ready.is_empty() {
            self.park();
        }
    }

    /// Parks until an event arrives, via the sleeper-set handshake:
    /// publish our bit, re-check every work source, and only then park.
    /// Producers wake at most one sleeper per event; the timeout bounds
    /// staleness if a wake-up races with parking.
    fn park(&mut self) {
        let sleepers = &self.rt.sleepers;
        sleepers.prepare_park(self.index);
        if self.rt.is_shutdown()
            || self.rt.injector_nonempty()
            || self.rt.inbox_nonempty(self.index)
        {
            sleepers.cancel_park(self.index);
            return;
        }
        self.trace(EventKind::Park);
        std::thread::park_timeout(Duration::from_micros(self.rt.config.park_micros));
        sleepers.cancel_park(self.index);
    }

    // ------------------------------------------------------------------
    // Polling.
    // ------------------------------------------------------------------

    fn poll_task(&mut self, task: TaskRef) {
        let mut inject_spurious = false;
        if let Some(f) = &self.faults {
            // Emulate OS preemption between deadline computation and the
            // poll — the window behind the resume_path flake.
            if let Some(delay) = f.poll_delay() {
                std::thread::sleep(delay);
            }
            inject_spurious = f.spurious_wake();
        }
        task.begin_poll();
        self.ctr().bump(&self.ctr().polls);
        if self.tracer.is_some() {
            // A resumed suspension reaches its next poll: the vertex
            // *executed*. (The tag is only ever set while tracing.)
            let seq = task.take_trace_seq();
            if seq != 0 {
                self.trace(EventKind::ResumeExec { seq });
            }
        }
        // One TLS access per poll: install the current task, run the poll,
        // and read back the suspend count under the same borrow. Nested
        // TLS uses during the poll (spawn_local, register_latency, …) take
        // their own shared borrows, which is fine — only install/clear
        // take the outer RefCell mutably.
        let suspends = TLS.with(|t| {
            let borrow = t.borrow();
            let tls = borrow.as_ref().expect("worker TLS installed");
            *tls.current_task.borrow_mut() = Some(task.clone());
            tls.suspend_count.set(0);

            // Task bodies are wrapped in CatchUnwind, so a panic here
            // indicates a bug in runtime-internal futures; contain it
            // anyway.
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task.poll_future()));

            *tls.current_task.borrow_mut() = None;
            let suspends = tls.suspend_count.get();

            match res {
                Ok(std::task::Poll::Ready(())) => task.complete(),
                Ok(std::task::Poll::Pending) => {
                    if task.finish_pending() {
                        // Woken during the poll: runnable again right away.
                        tls.pending_local.borrow_mut().push(task.clone());
                    } else if inject_spurious {
                        // Spurious wake before completion: the task re-polls
                        // while its registrations stay armed. Suspending
                        // futures must keep their original registration
                        // (one registration ↔ one resume event).
                        crate::task::wake_task(task.clone());
                    }
                }
                Err(_panic) => {
                    // Internal future panicked; mark done so joiners don't
                    // hang forever on a poisoned task (user-facing panics
                    // travel via CatchUnwind + JoinCell instead).
                    task.complete();
                }
            }
            suspends
        });

        if suspends > 0 {
            let a = self
                .active
                .expect("a suspending task was polled from an active deque");
            self.owned[a].suspend_ctr += suspends as u64;
        }
    }

    /// Flushes the TLS pending buffer to the bottom of the active deque.
    fn flush_pending(&mut self) {
        let pending: Vec<TaskRef> = TLS.with(|t| {
            let borrow = t.borrow();
            let tls = borrow.as_ref().expect("worker TLS installed");
            let taken = std::mem::take(&mut *tls.pending_local.borrow_mut());
            taken
        });
        if pending.is_empty() {
            return;
        }
        let a = match self.active {
            Some(a) => a,
            None => {
                // Wakes can arrive while idling between deques (e.g. a
                // steal victim's child completing our joined task): give
                // them a fresh deque.
                let q = self.new_deque();
                self.activate(q);
                q
            }
        };
        for t in pending {
            self.owned[a].handle.push_bottom(t);
        }
        self.advertise();
    }

    // ------------------------------------------------------------------
    // Resumes (callback + addResumedVertices).
    // ------------------------------------------------------------------

    /// Drains the inbox **batch** delivered by the timer (or external
    /// completions): one vector swap for the whole burst, then
    /// `callback(v, q)` per event and one pfor reinjection tree per
    /// resumed deque.
    fn drain_resumes(&mut self) {
        let mut batch = std::mem::take(&mut self.inbox_scratch);
        self.rt.drain_inbox(self.index, &mut batch);
        if batch.is_empty() {
            self.inbox_scratch = batch;
            return;
        }
        for ev in batch.drain(..) {
            self.ctr().bump(&self.ctr().resumes);
            if let Some(tr) = &self.tracer {
                if ev.seq != 0 {
                    // The owner drained the event: the vertex is *ready*.
                    tr.record(
                        self.index,
                        EventKind::ResumeReady {
                            seq: ev.seq,
                            enabled_at: ev.enabled_at,
                        },
                    );
                    // Tag the task so its next poll emits `ResumeExec`.
                    ev.task.set_trace_seq(ev.seq);
                }
            }
            let d = &mut self.owned[ev.local_deque];
            debug_assert!(d.suspend_ctr > 0, "resume without suspension");
            d.suspend_ctr -= 1;
            d.resumed.push(ev.task);
            if !d.in_resumed {
                d.in_resumed = true;
                self.resumed_list.push(ev.local_deque);
            }
        }
        self.inbox_scratch = batch;
        debug_assert!(!self.resumed_list.is_empty());
        // addResumedVertices(): one pfor batch per resumed deque.
        let list = std::mem::take(&mut self.resumed_list);
        for q in list {
            let d = &mut self.owned[q];
            d.in_resumed = false;
            let vs = std::mem::take(&mut d.resumed);
            debug_assert!(!vs.is_empty());
            if vs.len() == 1 {
                // Singleton: schedule the task directly (a pfor tree with
                // one leaf is just the leaf).
                let task = vs.into_iter().next().expect("len 1");
                if task.try_claim_for_queue() {
                    self.owned[q].handle.push_bottom(task);
                }
            } else {
                self.ctr().bump(&self.ctr().pfor_batches);
                let pfor = crate::pfor::new_pfor_task(&self.rt, vs);
                self.owned[q].handle.push_bottom(pfor);
            }
            self.mark_ready(q);
        }
        self.advertise();
    }

    /// Fault hook: demote a non-empty active deque to the ready list, as
    /// if the worker had been forced off it. The next idle step reactivates
    /// it (or a sibling) through the normal `pop_ready` switch path, which
    /// always runs before `new_deque` — so Lemma 7's bound is preserved.
    fn maybe_forced_switch(&mut self) {
        let Some(f) = &self.faults else { return };
        let Some(a) = self.active else { return };
        if self.owned[a].handle.is_empty() || !f.force_deque_switch() {
            return;
        }
        self.active = None;
        TLS.with(|t| {
            let borrow = t.borrow();
            if let Some(tls) = borrow.as_ref() {
                tls.active_local.set(NO_DEQUE);
            }
        });
        self.mark_ready(a);
        self.advertise();
    }

    fn mark_ready(&mut self, q: usize) {
        if self.active == Some(q) || self.owned[q].in_ready {
            return;
        }
        self.owned[q].in_ready = true;
        self.ready.push_back(q);
    }

    fn pop_ready(&mut self) -> Option<usize> {
        let q = self.ready.pop_front()?;
        self.owned[q].in_ready = false;
        Some(q)
    }

    // ------------------------------------------------------------------
    // Deque lifecycle (Figure 5).
    // ------------------------------------------------------------------

    fn new_deque(&mut self) -> usize {
        let q = match self.empty.pop() {
            Some(q) => {
                // Figure 5: recycle, never deallocate. Re-entering the
                // registry's live set makes the slot visible to thieves
                // sampling over live deques again.
                self.owned[q].freed = false;
                self.rt.registry.reuse(self.owned[q].global);
                q
            }
            None => {
                let (worker_end, stealer) = WorkerHandle::new(self.rt.config.deque_kind);
                let global = self
                    .rt
                    .registry
                    .register(self.index, stealer)
                    .expect("deque registry exhausted; raise Config::registry_capacity");
                self.ctr().bump(&self.ctr().deques_allocated);
                self.owned.push(OwnedDeque {
                    global,
                    handle: worker_end,
                    suspend_ctr: 0,
                    resumed: Vec::new(),
                    in_ready: false,
                    in_resumed: false,
                    freed: false,
                });
                self.owned.len() - 1
            }
        };
        self.live_deques += 1;
        self.ctr().observe_deques(self.live_deques);
        self.trace(EventKind::DequeAlloc {
            live: self.live_deques as u32,
        });
        q
    }

    fn free_deque(&mut self, q: usize) {
        debug_assert!(self.owned[q].handle.is_empty());
        debug_assert_eq!(self.owned[q].suspend_ctr, 0);
        debug_assert!(self.owned[q].resumed.is_empty());
        self.owned[q].freed = true;
        let compacted = self.rt.registry.release(self.owned[q].global);
        self.empty.push(q);
        self.live_deques -= 1;
        self.trace(EventKind::DequeRelease {
            live: self.live_deques as u32,
        });
        if compacted {
            self.trace(EventKind::RegistryCompact {
                deque: self.owned[q].global.index() as u32,
            });
        }
    }

    fn activate(&mut self, q: usize) {
        self.active = Some(q);
        TLS.with(|t| {
            let borrow = t.borrow();
            if let Some(tls) = borrow.as_ref() {
                tls.active_local.set(q);
            }
        });
        self.advertise();
    }

    fn release_active_if_empty(&mut self) {
        let Some(a) = self.active else { return };
        if !self.owned[a].handle.is_empty() {
            return;
        }
        self.active = None;
        TLS.with(|t| {
            let borrow = t.borrow();
            if let Some(tls) = borrow.as_ref() {
                tls.active_local.set(NO_DEQUE);
            }
        });
        if self.owned[a].suspend_ctr == 0 && self.owned[a].resumed.is_empty() {
            self.free_deque(a);
        }
        // Otherwise the deque parks as a suspended deque until a resume.
        self.advertise();
    }

    // ------------------------------------------------------------------
    // Stealing.
    // ------------------------------------------------------------------

    /// One pop-top on victim deque `id`. A [`Steal::Retry`] from the deque
    /// (a benign race) re-tries the same victim up to [`STEAL_RETRIES`]
    /// times before the attempt counts as failed — previously a Retry was
    /// swallowed as a failure outright, wasting the victim draw. Each
    /// inner retry is counted (`steal_retries`) *before* the backoff
    /// spin, so the counter is exact even mid-spin.
    fn steal_from(&self, id: DequeId) -> (Option<TaskRef>, StealOutcome) {
        for _ in 0..STEAL_RETRIES {
            match self.rt.registry.steal(id) {
                Steal::Success(task) => return (Some(task), StealOutcome::Success),
                Steal::Empty => return (None, StealOutcome::Empty),
                Steal::Retry => {
                    self.ctr().bump(&self.ctr().steal_retries);
                    std::hint::spin_loop();
                }
            }
        }
        (None, StealOutcome::LostRace)
    }

    /// One steal against victim `id`, single or steal-half depending on
    /// the policy's current batch cap. On a multi-task claim the first
    /// task is returned as the assigned task and the remainder stays in
    /// `steal_scratch` for [`Worker::land_batch_overflow`].
    fn steal_victim(&mut self, id: DequeId) -> (Option<TaskRef>, StealOutcome) {
        let cap = self.policy.batch_cap();
        if cap <= 1 {
            let r = self.steal_from(id);
            if r.0.is_some() {
                // Feed Adaptive's depth loop from the single path too, or
                // its cap could never leave 1.
                self.policy.record_batch(1, 1);
            }
            return r;
        }
        debug_assert!(self.steal_scratch.is_empty());
        for _ in 0..STEAL_RETRIES {
            match self
                .rt
                .registry
                .steal_batch(id, cap, &mut self.steal_scratch)
            {
                Steal::Success(n) => {
                    debug_assert_eq!(n, self.steal_scratch.len());
                    self.policy.record_batch(n, cap);
                    if n >= 2 {
                        let c = self.ctr();
                        c.add(&c.steal_batch_tasks, n as u64);
                        self.trace(EventKind::StealBatch {
                            victim: id.index() as u32,
                            n: n as u32,
                        });
                    }
                    let first = self.steal_scratch.remove(0);
                    return (Some(first), StealOutcome::Success);
                }
                Steal::Empty => return (None, StealOutcome::Empty),
                Steal::Retry => {
                    self.ctr().bump(&self.ctr().steal_retries);
                    std::hint::spin_loop();
                }
            }
        }
        (None, StealOutcome::LostRace)
    }

    /// Lands the overflow of a multi-task steal (everything past the
    /// assigned first task) in fresh deque `q`, pushed in reverse so the
    /// owner's LIFO pops replay the batch in its original top-to-bottom
    /// order. No-op after single-item steals.
    fn land_batch_overflow(&mut self, q: usize) {
        if self.steal_scratch.is_empty() {
            return;
        }
        let mut rest = std::mem::take(&mut self.steal_scratch);
        for t in rest.drain(..).rev() {
            self.owned[q].handle.push_bottom(t);
        }
        self.steal_scratch = rest;
        self.advertise();
    }

    /// One steal attempt (exactly one `Steal` trace event — including
    /// attempts that never reach a victim deque — so trace steal counts
    /// match `steals_attempted` exactly).
    fn try_steal(&mut self) -> Option<TaskRef> {
        if let Some(f) = &self.faults {
            // Forced failure before the victim draw: from the scheduler's
            // perspective, a steal that lost its race (retry storms under
            // high rates). Still exactly one Steal event per attempt.
            if f.steal_fail() {
                self.trace(EventKind::Steal {
                    victim_deque: NONE_ID,
                    victim_worker: NONE_ID,
                    outcome: StealOutcome::LostRace,
                });
                return None;
            }
        }
        let (victim, victim_worker, got, outcome) = match self.rt.config.steal_policy {
            StealPolicy::Uniform => self.steal_uniform(),
            StealPolicy::Affinity | StealPolicy::Adaptive => self.steal_affinity(),
            StealPolicy::WorkerThenDeque => {
                let p = self.rt.config.workers;
                if p == 1 {
                    (None, NONE_ID, None, StealOutcome::Empty)
                } else {
                    let mut victim = self.rng.gen_range(0..p - 1);
                    if victim >= self.index {
                        victim += 1;
                    }
                    let ids: Vec<DequeId> = self.rt.shared_steal[victim].lock().clone();
                    if ids.is_empty() {
                        (None, victim as u32, None, StealOutcome::Empty)
                    } else {
                        let id = ids[self.rng.gen_range(0..ids.len())];
                        let (task, outcome) = self.steal_victim(id);
                        (Some(id), victim as u32, task, outcome)
                    }
                }
            }
        };
        self.trace(EventKind::Steal {
            victim_deque: victim.map_or(NONE_ID, |id| id.index() as u32),
            victim_worker,
            outcome,
        });
        got
    }

    /// Uniform victim draw: the paper's memoryless `randomDeque()` over
    /// the live set (or the slot-array baseline when the live index is
    /// off or faulted stale).
    fn steal_uniform(&mut self) -> (Option<DequeId>, u32, Option<TaskRef>, StealOutcome) {
        // Stale-live-index fault: pretend the live index lagged and
        // fall back to the slot-array draw, which can land on a
        // freed slot — exercising the dead-target accounting below.
        let use_live = self.rt.config.live_index
            && !self.faults.as_ref().is_some_and(|f| f.stale_live_index());
        let drawn = if use_live {
            self.rt.registry.random_live_id(self.rng.gen())
        } else {
            self.rt.registry.random_id(self.rng.gen())
        };
        match drawn {
            None => (None, NONE_ID, None, StealOutcome::Empty),
            Some(id) => self.steal_checked(id),
        }
    }

    /// One steal against `id` with dead-target accounting and the
    /// trace-only owner lookup.
    fn steal_checked(
        &mut self,
        id: DequeId,
    ) -> (Option<DequeId>, u32, Option<TaskRef>, StealOutcome) {
        let (task, mut outcome) = self.steal_victim(id);
        if task.is_none() && !self.rt.registry.is_live(id) {
            // The draw landed on a freed slot. The paper's
            // `randomDeque()` simply eats such failures; counting them is
            // what lets the live-set index be shown to remove them.
            self.ctr().bump(&self.ctr().steals_dead_target);
            outcome = StealOutcome::Dead;
        }
        // The owner lookup is trace-only metadata; skip it when no one is
        // recording.
        let owner = if self.tracer.is_some() {
            self.rt.registry.owner_of(id).map_or(NONE_ID, |w| w as u32)
        } else {
            NONE_ID
        };
        (Some(id), owner, task, outcome)
    }

    /// Affinity victim draw: retry the last successful victim while it
    /// stays live, then prefer a draw from its owner's registry shard,
    /// then fall back to the uniform draw (counted in `steal_fallbacks`).
    fn steal_affinity(&mut self) -> (Option<DequeId>, u32, Option<TaskRef>, StealOutcome) {
        // Chaos hook: poison the cached victim before consulting it, as
        // if it had just retired under us.
        if self.policy.cached_victim().is_some()
            && self.faults.as_ref().is_some_and(|f| f.affinity_stale())
        {
            self.policy.poison();
        }
        if let Some(id) = self.policy.cached_victim() {
            if self.rt.registry.is_live(id) {
                let r = self.steal_checked(id);
                if r.2.is_some() {
                    self.ctr().bump(&self.ctr().steal_affinity_hits);
                    let owner = self.rt.registry.owner_of(id);
                    self.policy.record_hit(id, owner);
                    return r;
                }
            }
            // Missed or retired: forget the id, keep the shard preference.
            self.policy.clear_victim();
        }
        if let Some(owner) = self.policy.preferred_owner() {
            let drawn = self
                .rt
                .registry
                .random_live_id_in_shard(owner, self.rng.gen());
            if let Some(id) = drawn {
                let r = self.steal_checked(id);
                if r.2.is_some() {
                    self.ctr().bump(&self.ctr().steal_affinity_hits);
                    let owner = self.rt.registry.owner_of(id);
                    self.policy.record_hit(id, owner);
                    return r;
                }
            }
            // The preferred shard has gone cold; drop the preference so
            // the next attempt goes straight to the uniform draw.
            self.policy.poison();
        }
        // No affinity signal left: uniform live-index draw, reseeding the
        // cache on success.
        self.ctr().bump(&self.ctr().steal_fallbacks);
        let r = self.steal_uniform();
        if r.2.is_some() {
            if let Some(id) = r.0 {
                let owner = self.rt.registry.owner_of(id);
                self.policy.record_hit(id, owner);
            }
        }
        r
    }

    /// Publishes this worker's stealable deques (active + ready) for the
    /// WorkerThenDeque policy. Skips the publish — no allocation, no
    /// mutex — when the set is unchanged since last time, which is the
    /// overwhelmingly common case in the poll loop (`activate`/`flush`
    /// re-advertise the same single active deque).
    fn advertise(&mut self) {
        if self.rt.config.steal_policy != StealPolicy::WorkerThenDeque {
            return;
        }
        let mut ids = std::mem::take(&mut self.adv_scratch);
        ids.clear();
        if let Some(a) = self.active {
            ids.push(self.owned[a].global);
        }
        for &q in &self.ready {
            ids.push(self.owned[q].global);
        }
        if ids == self.advertised {
            self.adv_scratch = ids;
            return;
        }
        self.rt.shared_steal[self.index].lock().clone_from(&ids);
        // `ids` becomes the cached fingerprint; the old one is the next
        // build buffer.
        self.adv_scratch = std::mem::replace(&mut self.advertised, ids);
    }

    // ------------------------------------------------------------------
    // TLS plumbing.
    // ------------------------------------------------------------------

    fn install_tls(&self) {
        TLS.with(|t| {
            *t.borrow_mut() = Some(WorkerTls {
                rt: Arc::downgrade(&self.rt),
                index: self.index,
                active_local: Cell::new(NO_DEQUE),
                current_task: RefCell::new(None),
                suspend_count: Cell::new(0),
                pending_local: RefCell::new(Vec::new()),
                suspend_seq: Cell::new(0),
            });
        });
    }

    fn clear_tls(&self) {
        TLS.with(|t| {
            *t.borrow_mut() = None;
        });
    }
}

/// Schedules a batch of resumed tasks from inside a pfor task's poll: each
/// task that is still idle is claimed and buffered for the active deque.
pub(crate) fn schedule_resumed_batch(tasks: Vec<TaskRef>) {
    TLS.with(|t| {
        let borrow = t.borrow();
        let tls = borrow
            .as_ref()
            .expect("pfor tasks only run on worker threads");
        let mut pending = tls.pending_local.borrow_mut();
        for task in tasks {
            if task.try_claim_for_queue() {
                pending.push(task);
            }
        }
    });
}

/// Creates and immediately buffers a task (used by pfor splitting); the
/// task must already be in the QUEUED state.
pub(crate) fn push_queued_task(task: TaskRef) {
    spawn_local(task);
}

/// Marker impl so `Task::state` reads in this module optimize well.
#[allow(dead_code)]
fn _assert_send() {
    fn is_send<T: Send>() {}
    is_send::<Task>();
}
