//! Tasks: suspendable user-level threads.
//!
//! A [`Task`] owns a boxed future and an atomic state machine. The state
//! machine serializes polling and makes wake-ups race-free:
//!
//! ```text
//!        wake            poll            Ready
//! IDLE ───────► QUEUED ───────► RUNNING ───────► DONE
//!   ▲                              │  ▲
//!   │        Pending (no wake)     │  │ wake while RUNNING
//!   └──────────────────────────────┘  └────► NOTIFIED ──► requeued
//! ```
//!
//! * `wake` on an `IDLE` task claims it (CAS) and delivers it to a
//!   scheduler queue — exactly once.
//! * `wake` on a `RUNNING` task sets `NOTIFIED`; the poller requeues it
//!   when the poll returns `Pending`, so no wake-up is lost.
//! * `wake` on `QUEUED`/`NOTIFIED`/`DONE` is a no-op.
//!
//! Wake *routing* implements the paper's split between light and heavy
//! enabling: a wake from a worker thread of the same runtime is an ordinary
//! enabling (the completer pushes the task onto its active deque — the
//! enabling-edge semantics of work stealing), while latency resumes bypass
//! wakers entirely and travel through the timer → inbox →
//! `addResumedVertices` path ([`crate::worker`]).

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Weak};
use std::task::Wake;

use parking_lot::Mutex;

use crate::runtime::RtInner;
use crate::worker;

/// Boxed task body.
pub(crate) type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Shared reference to a task.
pub(crate) type TaskRef = Arc<Task>;

/// Task lifecycle states.
pub(crate) mod state {
    /// Suspended/waiting; not in any queue.
    pub const IDLE: u8 = 0;
    /// In a deque, inbox, or injector; will be polled.
    pub const QUEUED: u8 = 1;
    /// Currently being polled by a worker.
    pub const RUNNING: u8 = 2;
    /// Woken while running; requeue on `Pending`.
    pub const NOTIFIED: u8 = 3;
    /// Completed; the future has been dropped.
    pub const DONE: u8 = 4;
}

/// A suspendable user-level thread.
pub(crate) struct Task {
    state: AtomicU8,
    /// The future, present until completion. The lock is held only while
    /// polling (never by `wake`), so it is uncontended in practice.
    future: Mutex<Option<BoxFuture>>,
    /// Back-reference for wake routing. Weak: tasks must not keep the
    /// runtime alive.
    rt: Weak<RtInner>,
    /// Trace tag of the suspension this task was last resumed from (`0` =
    /// none). Set when the owner drains the resume event, consumed at the
    /// next poll to emit the `ResumeExec` trace event. Only touched while
    /// tracing is enabled.
    trace_seq: AtomicU64,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("state", &self.state.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Task {
    /// Creates a task in the `QUEUED` state (about to be delivered to a
    /// scheduler queue by the caller).
    pub fn new_queued(rt: Weak<RtInner>, fut: BoxFuture) -> TaskRef {
        Arc::new(Task {
            state: AtomicU8::new(state::QUEUED),
            future: Mutex::new(Some(fut)),
            rt,
            trace_seq: AtomicU64::new(0),
        })
    }

    /// Tags the task with the trace seq of the suspension it resumes.
    #[inline]
    pub fn set_trace_seq(&self, seq: u64) {
        self.trace_seq.store(seq, Ordering::Relaxed);
    }

    /// Takes (and clears) the resume trace tag; `0` if none.
    #[inline]
    pub fn take_trace_seq(&self) -> u64 {
        self.trace_seq.swap(0, Ordering::Relaxed)
    }

    /// Current state (diagnostics and tests).
    #[allow(dead_code)]
    #[inline]
    pub fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    /// True once the task has completed and dropped its future.
    #[allow(dead_code)]
    pub fn is_done(&self) -> bool {
        self.state() == state::DONE
    }

    /// Claims an `IDLE` task for scheduling: `IDLE → QUEUED`. Returns true
    /// if this caller must now deliver the task to a queue.
    pub fn try_claim_for_queue(&self) -> bool {
        self.state
            .compare_exchange(
                state::IDLE,
                state::QUEUED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Transition `QUEUED → RUNNING` at the start of a poll.
    pub fn begin_poll(&self) {
        let prev = self.state.swap(state::RUNNING, Ordering::AcqRel);
        debug_assert_eq!(prev, state::QUEUED, "polling a task that was not queued");
    }

    /// Polls the task's future. Returns `true` if the future completed.
    ///
    /// Caller must have called [`Task::begin_poll`] and must follow up with
    /// [`Task::complete`] or [`Task::finish_pending`].
    pub fn poll_future(self: &TaskRef) -> std::task::Poll<()> {
        let waker = std::task::Waker::from(self.clone());
        let mut cx = std::task::Context::from_waker(&waker);
        let mut slot = self.future.lock();
        let fut = slot.as_mut().expect("polling a task whose future is gone");
        fut.as_mut().poll(&mut cx)
    }

    /// Marks the task complete and drops its future.
    pub fn complete(&self) {
        *self.future.lock() = None;
        self.state.store(state::DONE, Ordering::Release);
    }

    /// Settles a `Pending` poll: `RUNNING → IDLE`, unless a wake arrived
    /// during the poll (`NOTIFIED`), in which case the task transitions
    /// back to `QUEUED` and `true` is returned — the caller must requeue
    /// it immediately.
    pub fn finish_pending(&self) -> bool {
        match self.state.compare_exchange(
            state::RUNNING,
            state::IDLE,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => false,
            Err(actual) => {
                debug_assert_eq!(actual, state::NOTIFIED);
                self.state.store(state::QUEUED, Ordering::Release);
                true
            }
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        wake_task(self);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        wake_task(self.clone());
    }
}

/// The wake protocol described in the module docs. `pub(crate)` so the
/// fault layer can inject spurious wakes through the real protocol.
pub(crate) fn wake_task(task: TaskRef) {
    loop {
        let s = task.state.load(Ordering::Acquire);
        match s {
            state::IDLE => {
                if task
                    .state
                    .compare_exchange(
                        state::IDLE,
                        state::QUEUED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    deliver(task);
                    return;
                }
            }
            state::RUNNING => {
                if task
                    .state
                    .compare_exchange(
                        state::RUNNING,
                        state::NOTIFIED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    return;
                }
            }
            state::QUEUED | state::NOTIFIED | state::DONE => return,
            _ => unreachable!("invalid task state {s}"),
        }
    }
}

/// Delivers a freshly claimed (`QUEUED`) task to a scheduler queue.
///
/// On a worker thread of the owning runtime, the task is enqueued onto
/// that worker's pending-enable buffer (flushed to the bottom of its
/// active deque) — this is the light-edge "completer enables the
/// continuation" path. From any other thread, the task goes to the global
/// injector and a worker is unparked.
fn deliver(task: TaskRef) {
    let Some(rt) = task.rt.upgrade() else {
        // Runtime shut down; drop the task.
        return;
    };
    if worker::enqueue_local_if_same_runtime(&rt, &task, false) {
        return;
    }
    rt.inject(task);
}
