//! The blocking work-stealing baseline (the paper's "WS" comparator).
//!
//! A classic Arora–Blumofe–Plaxton work stealer: **one deque per worker**,
//! owner pops the bottom, thieves steal the top of a random *worker's*
//! deque. Latency is **not hidden**: when an executed instruction enables a
//! child over a heavy edge, the worker blocks — exactly as a runtime whose
//! thread sleeps in a blocking I/O call — until the latency expires, then
//! continues with that child. While blocked, the worker does nothing, but
//! its deque remains stealable by other workers (the blocked thread is in
//! the kernel; the deque lives in shared memory).
//!
//! This matches the paper's experimental baseline, where the benchmark's
//! simulated latency "sleeps for δ milliseconds" on the worker running it.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use lhws_dag::offline::{Schedule, ScheduleEntry};
use lhws_dag::{VertexId, WDag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stats::SimStats;

/// Per-worker state of the baseline scheduler.
#[derive(Debug, Default)]
struct WsWorker {
    deque: VecDeque<VertexId>, // back = bottom
    assigned: Option<VertexId>,
    /// Children waiting on latency: (ready round, vertex). While non-empty
    /// the worker is blocked.
    pending: BinaryHeap<Reverse<(u64, u32)>>,
}

impl WsWorker {
    fn blocked_until(&self) -> Option<u64> {
        self.pending.iter().map(|Reverse((r, _))| *r).max()
    }
}

/// The blocking work-stealing simulator.
#[derive(Debug)]
pub struct BaselineSim<'a> {
    dag: &'a WDag,
    p: usize,
    rng: StdRng,
    workers: Vec<WsWorker>,
    indeg: Vec<u32>,
    round: u64,
    executed: usize,
    max_rounds: Option<u64>,
    work_tokens: u64,
    steal_attempts: u64,
    steal_successes: u64,
    idle_tokens: u64,
    max_live_suspended: u64,
    entries: Vec<ScheduleEntry>,
}

impl<'a> BaselineSim<'a> {
    /// Creates a baseline simulator with `p` workers and the given seed.
    pub fn new(dag: &'a WDag, p: usize, seed: u64) -> Self {
        assert!(p >= 1);
        let n = dag.len();
        let mut sim = BaselineSim {
            dag,
            p,
            rng: StdRng::seed_from_u64(seed),
            workers: (0..p).map(|_| WsWorker::default()).collect(),
            indeg: (0..n).map(|v| dag.in_degree(VertexId(v as u32))).collect(),
            round: 0,
            executed: 0,
            max_rounds: None,
            work_tokens: 0,
            steal_attempts: 0,
            steal_successes: 0,
            idle_tokens: 0,
            max_live_suspended: 0,
            entries: Vec::with_capacity(n),
        };
        sim.workers[0].assigned = Some(dag.root());
        sim
    }

    /// Overrides the livelock-guard round cap.
    pub fn max_rounds(mut self, cap: u64) -> Self {
        self.max_rounds = Some(cap);
        self
    }

    /// Runs the computation to completion.
    pub fn run(mut self) -> SimStats {
        let total_latency: u64 = self
            .dag
            .heavy_edges()
            .map(|(_, e)| e.weight)
            .sum::<u64>()
            .max(1);
        let cap = self
            .max_rounds
            .unwrap_or(1_000 + 40 * (self.dag.work() + total_latency) * self.p as u64);
        while self.executed < self.dag.len() {
            self.round += 1;
            assert!(
                self.round <= cap,
                "baseline simulator exceeded {cap} rounds — livelock?"
            );
            let blocked_now = self
                .workers
                .iter()
                .map(|w| w.pending.len() as u64)
                .sum::<u64>();
            self.max_live_suspended = self.max_live_suspended.max(blocked_now);
            for p in 0..self.p {
                self.worker_round(p);
                if self.executed == self.dag.len() {
                    break;
                }
            }
        }
        // Account the final partial round's missing tokens as idle.
        let total = self.round * self.p as u64;
        self.idle_tokens = total - self.work_tokens - self.steal_attempts;
        SimStats {
            workers: self.p,
            rounds: self.round,
            work_tokens: self.work_tokens,
            pfor_vertices: 0,
            switch_tokens: 0,
            steal_attempts: self.steal_attempts,
            steal_successes: self.steal_successes,
            idle_tokens: self.idle_tokens,
            deques_allocated: self.p as u64,
            max_deques_per_worker: 1,
            max_live_suspended: self.max_live_suspended,
            enabling_span: 0,
            vertex_depths: Vec::new(),
            deviations: 0,
            trace: None,
            schedule: Schedule {
                workers: self.p,
                entries: self.entries,
                length: self.round,
            },
        }
    }

    fn worker_round(&mut self, p: usize) {
        // Blocked in a latency-incurring call: do nothing this round.
        if let Some(until) = self.workers[p].blocked_until() {
            if self.round < until {
                return; // idle (blocked) token
            }
            // Latency expired: the continuation(s) become runnable.
            while let Some(Reverse((_, v))) = self.workers[p].pending.pop() {
                let v = VertexId(v);
                match self.workers[p].assigned {
                    None => self.workers[p].assigned = Some(v),
                    Some(_) => self.workers[p].deque.push_back(v),
                }
            }
        }

        if let Some(v) = self.workers[p].assigned.take() {
            self.execute(p, v);
            self.workers[p].assigned = self.workers[p].deque.pop_back();
        } else {
            // Thief: target a random other worker's deque top.
            self.steal_attempts += 1;
            if self.p > 1 {
                let mut victim = self.rng.gen_range(0..self.p - 1);
                if victim >= p {
                    victim += 1;
                }
                if let Some(v) = self.workers[victim].deque.pop_front() {
                    self.steal_successes += 1;
                    self.workers[p].assigned = Some(v);
                }
            }
        }
    }

    fn execute(&mut self, p: usize, v: VertexId) {
        self.work_tokens += 1;
        self.executed += 1;
        self.entries.push(ScheduleEntry {
            round: self.round,
            worker: p,
            vertex: v,
        });

        let outs = self.dag.out(v);
        let mut enabled: Vec<(VertexId, u64)> = Vec::with_capacity(2);
        // Push right first so the left child ends up at the bottom.
        if let Some(e) = outs.right() {
            self.indeg[e.dst.index()] -= 1;
            if self.indeg[e.dst.index()] == 0 {
                enabled.push((e.dst, e.weight));
            }
        }
        if let Some(e) = outs.left() {
            self.indeg[e.dst.index()] -= 1;
            if self.indeg[e.dst.index()] == 0 {
                enabled.push((e.dst, e.weight));
            }
        }
        for (c, w) in enabled {
            if w > 1 {
                // The worker blocks waiting for this child's latency.
                self.workers[p].pending.push(Reverse((self.round + w, c.0)));
            } else {
                self.workers[p].deque.push_back(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhws_dag::gen::{fib, map_reduce, random_sp, server, RandomSpParams};
    use lhws_dag::offline::validate_schedule;
    use lhws_dag::Block;

    fn run(dag: &WDag, p: usize, seed: u64) -> SimStats {
        BaselineSim::new(dag, p, seed).run()
    }

    #[test]
    fn single_vertex() {
        let d = Block::work(1).build();
        let s = run(&d, 1, 0);
        assert_eq!(s.rounds, 1);
        validate_schedule(&d, &s.schedule).unwrap();
    }

    #[test]
    fn executes_everything_once() {
        for p in [1usize, 2, 4, 8] {
            let d = fib(11, 3).dag;
            let s = run(&d, p, 5);
            validate_schedule(&d, &s.schedule).unwrap();
            assert_eq!(s.schedule.entries.len(), d.len());
            assert!(s.token_identity_holds());
        }
    }

    #[test]
    fn blocking_wastes_the_worker() {
        // One long latency and plenty of other work: the blocked worker
        // contributes nothing for delta rounds.
        let d = Block::par(
            Block::seq([Block::latency(200), Block::work(1)]),
            Block::par_tree(8, &mut |_| Block::work(8)),
        )
        .build();
        let s = run(&d, 2, 0);
        validate_schedule(&d, &s.schedule).unwrap();
        assert!(s.idle_tokens > 0, "some worker must have blocked");
    }

    #[test]
    fn sequential_latencies_serialize() {
        // The server makes WS wait out every input latency.
        let wl = server(5, 100, 2, 1);
        let s = run(&wl.dag, 4, 0);
        validate_schedule(&wl.dag, &s.schedule).unwrap();
        assert!(s.rounds >= 500, "five sequential 100-round latencies");
    }

    #[test]
    fn map_reduce_blocks_all_workers() {
        // With P workers and n >> P latencies, WS pays ~ (n/P) * delta.
        let wl = map_reduce(16, 100, 2, 1);
        let s = run(&wl.dag, 4, 0);
        validate_schedule(&wl.dag, &s.schedule).unwrap();
        assert!(
            s.rounds >= (16 / 4) * 100,
            "each worker serially waits out its share of fetches: {}",
            s.rounds
        );
    }

    #[test]
    fn unweighted_dags_run_fine() {
        for seed in 0..8 {
            let wl = random_sp(
                RandomSpParams::default()
                    .seed(seed)
                    .latency_prob(0.0)
                    .target_leaves(25),
            );
            for p in [1usize, 4] {
                let s = run(&wl.dag, p, seed);
                validate_schedule(&wl.dag, &s.schedule).unwrap();
            }
        }
    }

    #[test]
    fn weighted_random_dags_validate() {
        for seed in 0..8 {
            let wl = random_sp(RandomSpParams::default().seed(seed).target_leaves(25));
            for p in [1usize, 3, 6] {
                let s = run(&wl.dag, p, seed + 100);
                validate_schedule(&wl.dag, &s.schedule).unwrap();
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let wl = map_reduce(8, 30, 4, 1);
        let a = run(&wl.dag, 3, 77);
        let b = run(&wl.dag, 3, 77);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.schedule.entries, b.schedule.entries);
    }

    #[test]
    fn stealable_while_blocked() {
        // Worker 0 blocks on the latency, but the sibling work it pushed
        // earlier must still be stolen and finished by worker 1 well before
        // the latency expires.
        let d = Block::par(
            Block::seq([Block::latency(1_000), Block::work(1)]),
            Block::work(50),
        )
        .build();
        let s = run(&d, 2, 0);
        validate_schedule(&d, &s.schedule).unwrap();
        let work_round = s.schedule.entries.iter().filter(|e| e.round < 900).count();
        assert!(
            work_round > 50,
            "the 50-vertex chain ran during the block: {work_round}"
        );
    }
}
