//! Execution statistics collected by the simulators.

use lhws_dag::offline::Schedule;

/// Statistics of one simulated execution.
///
/// The token counts follow the bucket argument of Lemma 1: every worker
/// places exactly one token per round into the work, switch, steal, or
/// (baseline only) idle bucket, so
/// `rounds · P = work + switch + steal + idle`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimStats {
    /// Number of workers.
    pub workers: usize,
    /// Total rounds to complete the computation.
    pub rounds: u64,
    /// Tokens in the work bucket: dag-vertex executions **plus** pfor-tree
    /// internal vertices (`W + W_pfor ≤ 2W`).
    pub work_tokens: u64,
    /// Of those, pfor-tree internal vertices only (`W_pfor`).
    pub pfor_vertices: u64,
    /// Tokens in the switch bucket (deque switches).
    pub switch_tokens: u64,
    /// Tokens in the steal bucket: steal *attempts* `R`.
    pub steal_attempts: u64,
    /// Steal attempts that obtained a vertex.
    pub steal_successes: u64,
    /// Rounds in which a worker did nothing (baseline: blocked on latency
    /// or completely idle; always 0 for LHWS, whose idle workers steal).
    pub idle_tokens: u64,
    /// Total deques ever allocated (`gTotalDeques`).
    pub deques_allocated: u64,
    /// Maximum number of allocated (live, non-freed) deques any single
    /// worker owned at any time — Lemma 7 bounds this by `U + 1`.
    pub max_deques_per_worker: u64,
    /// Maximum number of simultaneously suspended vertices observed —
    /// bounded by the suspension width `U` by definition.
    pub max_live_suspended: u64,
    /// The enabling span `S*`: maximum depth of any node in the enabling
    /// tree reconstructed from this execution (§4.1). Corollary 1 bounds
    /// it by `2·S·(1 + lg U)`. Zero for the blocking baseline (which has
    /// no pfor machinery; its enabling tree is the plain one).
    pub enabling_span: u64,
    /// The enabling-tree depth `d(v)` of every dag vertex in this
    /// execution. Lemma 2 (condition 1) bounds `d(v) ≤ (2 + lg U)·d_G(v)`.
    /// Empty for the blocking baseline.
    pub vertex_depths: Vec<u64>,
    /// Spoonhower-style deviations from the sequential depth-first order:
    /// rounds where a worker's executed vertex is not the DFS successor of
    /// its previously executed vertex. A locality proxy (0 for the
    /// baseline simulator, which does not track it).
    pub deviations: u64,
    /// Per-round event trace, when enabled in the config.
    pub trace: Option<crate::trace::Trace>,
    /// The executed schedule (round/worker/vertex triples) for independent
    /// validation against the dag semantics.
    pub schedule: Schedule,
}

impl SimStats {
    /// Token-accounting identity from Lemma 1's proof:
    /// `rounds · P = work + switch + steal + idle`.
    pub fn token_identity_holds(&self) -> bool {
        self.rounds * self.workers as u64
            == self.work_tokens + self.switch_tokens + self.steal_attempts + self.idle_tokens
    }

    /// The Lemma 1 bound: rounds ≤ `(4W + R)/P` (computed with the actual
    /// work `W` of the dag, passed in by the caller).
    pub fn lemma1_bound(&self, work: u64) -> u64 {
        (4 * work + self.steal_attempts).div_ceil(self.workers as u64)
    }

    /// Fraction of steal attempts that succeeded, in percent.
    pub fn steal_success_pct(&self) -> u64 {
        (self.steal_successes * 100)
            .checked_div(self.steal_attempts)
            .unwrap_or(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(rounds: u64, p: usize, work: u64, sw: u64, st: u64, idle: u64) -> SimStats {
        SimStats {
            workers: p,
            rounds,
            work_tokens: work,
            pfor_vertices: 0,
            switch_tokens: sw,
            steal_attempts: st,
            steal_successes: 0,
            idle_tokens: idle,
            deques_allocated: p as u64,
            max_deques_per_worker: 1,
            max_live_suspended: 0,
            enabling_span: 0,
            vertex_depths: Vec::new(),
            deviations: 0,
            trace: None,
            schedule: Schedule {
                workers: p,
                entries: vec![],
                length: rounds,
            },
        }
    }

    #[test]
    fn token_identity() {
        assert!(dummy(10, 2, 12, 3, 5, 0).token_identity_holds());
        assert!(!dummy(10, 2, 12, 3, 4, 0).token_identity_holds());
    }

    #[test]
    fn lemma1_bound_value() {
        let s = dummy(10, 4, 20, 0, 8, 12);
        // (4*20 + 8) / 4 = 22.
        assert_eq!(s.lemma1_bound(20), 22);
    }

    #[test]
    fn steal_pct_handles_zero() {
        assert_eq!(dummy(1, 1, 1, 0, 0, 0).steal_success_pct(), 100);
    }
}
