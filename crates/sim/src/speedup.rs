//! Speedup sweeps: the machinery behind the simulated Figure 11.
//!
//! The paper plots *self-speedup relative to the one-processor run of the
//! standard work stealer* for both schedulers. [`speedup_sweep`] reproduces
//! that: it measures `T_WS(1)` once, then `T(P)` for each scheduler and
//! each `P`, and reports `T_WS(1) / T(P)` (scaled by 100 to stay in
//! integers).

use lhws_dag::WDag;

use crate::baseline::BaselineSim;
use crate::lhws::{LhwsSim, SimConfig};
use crate::stats::SimStats;

/// One point of a speedup curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeedupPoint {
    /// Worker count.
    pub p: usize,
    /// Rounds taken by LHWS at this `p`.
    pub lhws_rounds: u64,
    /// Rounds taken by blocking WS at this `p`.
    pub ws_rounds: u64,
    /// LHWS speedup ×100 relative to `T_WS(1)`.
    pub lhws_speedup_x100: u64,
    /// WS speedup ×100 relative to `T_WS(1)`.
    pub ws_speedup_x100: u64,
}

/// Runs both schedulers over the given worker counts and reports speedups
/// relative to the baseline's one-worker run (the paper's normalization).
pub fn speedup_sweep(dag: &WDag, ps: &[usize], seed: u64) -> Vec<SpeedupPoint> {
    let t1 = BaselineSim::new(dag, 1, seed).run().rounds;
    ps.iter()
        .map(|&p| {
            let lh = LhwsSim::new(dag, SimConfig::new(p).seed(seed)).run().rounds;
            let ws = BaselineSim::new(dag, p, seed).run().rounds;
            SpeedupPoint {
                p,
                lhws_rounds: lh,
                ws_rounds: ws,
                lhws_speedup_x100: t1 * 100 / lh,
                ws_speedup_x100: t1 * 100 / ws,
            }
        })
        .collect()
}

/// Convenience: run LHWS once and return its stats.
pub fn run_lhws(dag: &WDag, p: usize, seed: u64) -> SimStats {
    LhwsSim::new(dag, SimConfig::new(p).seed(seed)).run()
}

/// Convenience: run the blocking baseline once and return its stats.
pub fn run_ws(dag: &WDag, p: usize, seed: u64) -> SimStats {
    BaselineSim::new(dag, p, seed).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhws_dag::gen::map_reduce;

    #[test]
    fn lhws_beats_ws_on_latency_bound_map_reduce() {
        // Figure 11's regime: latency >> leaf work. LHWS should win by a
        // wide margin at moderate P.
        let wl = map_reduce(64, 400, 8, 1);
        let pts = speedup_sweep(&wl.dag, &[1, 2, 4, 8], 7);
        for pt in &pts {
            assert!(
                pt.lhws_speedup_x100 >= pt.ws_speedup_x100,
                "P={}: LHWS {} < WS {}",
                pt.p,
                pt.lhws_speedup_x100,
                pt.ws_speedup_x100
            );
        }
        // Superlinear self-speedup for LHWS at P=8 (latency hidden).
        let p8 = pts.iter().find(|p| p.p == 8).unwrap();
        assert!(
            p8.lhws_speedup_x100 > 800,
            "expected superlinear speedup, got {}",
            p8.lhws_speedup_x100
        );
    }

    #[test]
    fn small_latency_curves_converge() {
        // delta=2 (barely heavy): hiding buys little; curves are close.
        let wl = map_reduce(64, 2, 64, 2);
        let pts = speedup_sweep(&wl.dag, &[4], 3);
        let pt = pts[0];
        let ratio_x100 = pt.lhws_speedup_x100 * 100 / pt.ws_speedup_x100.max(1);
        assert!(
            (80..=180).contains(&ratio_x100),
            "curves should be close at tiny latency, ratio {ratio_x100}"
        );
    }

    #[test]
    fn speedup_normalization_is_ws_p1() {
        let wl = map_reduce(16, 50, 8, 1);
        let pts = speedup_sweep(&wl.dag, &[1], 5);
        assert_eq!(pts[0].ws_speedup_x100, 100, "WS(1) vs itself");
        assert!(pts[0].lhws_speedup_x100 >= 100, "LHWS(1) at least as fast");
    }
}
