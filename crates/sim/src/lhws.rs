//! The latency-hiding work-stealing simulator: Figure 3, executed verbatim.
//!
//! Every worker takes one action per round, following the pseudocode:
//!
//! 1. With an assigned vertex: execute it; handle the right child, call
//!    `addResumedVertices()`, handle the left child (in that order, so the
//!    left child keeps the highest priority and the scheduler stays
//!    non-preemptive); then pop the bottom of the active deque.
//! 2. Without one: release the active deque (freeing it if it has no
//!    suspensions); switch to a ready deque if one exists, otherwise pick a
//!    uniformly random deque from the global registry and try to steal its
//!    top vertex, starting a fresh active deque on success; then call
//!    `addResumedVertices()` and pop the bottom of the (possibly new)
//!    active deque.
//!
//! Suspended vertices are paired with the deque that was active when they
//! suspended (`suspendCtr`); when they resume, `callback(v, q)` moves them
//! to `q.resumedVertices` and marks `q` resumed, and `addResumedVertices`
//! pushes one *pfor vertex* per resumed deque that unfolds into a balanced
//! binary tree executing the resumed vertices in parallel.
//!
//! One deliberate deviation from the letter of the pseudocode: a deque is
//! freed only if it has no suspensions **and** no pending resumed vertices.
//! The pseudocode's `suspendCtr == 0` check alone would let a worker free
//! its active deque in the narrow window after `callback` ran (decrementing
//! the counter) but before `addResumedVertices` drained the resumed set,
//! stranding those vertices on a recycled deque. Any real implementation
//! must close this window; ours does it with the extra emptiness check.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use lhws_dag::offline::{Schedule, ScheduleEntry};
use lhws_dag::{VertexId, WDag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stats::SimStats;

/// Victim-selection policy for steals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealPolicy {
    /// The analyzed algorithm: target a uniformly random *deque* from the
    /// global registry (which may be freed/empty — a failed attempt).
    #[default]
    RandomDeque,
    /// The paper's §6 implementation optimization: target a random *worker*
    /// (≠ self), then a random non-empty deque of that worker. Fails only
    /// if the victim has no non-empty deque.
    WorkerThenDeque,
}

/// What happens when a vertex suspends / resumes — the paper's algorithm
/// vs. the two Spoonhower-thesis variants its related-work section
/// contrasts ("in one variation, when a thread waits for another thread or
/// future, the entire deque is suspended and a new one is created. In
/// another, when a suspended thread resumes, a new deque is created to
/// execute it. Neither of these exactly corresponds to our approach, where
/// a delay does not suspend an entire deque, and new deques are created on
/// steals, not resumes.").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SuspendPolicy {
    /// The paper's algorithm: only the vertex suspends; its deque keeps
    /// running; resumes return to the same deque; new deques only on
    /// steals.
    #[default]
    PerVertex,
    /// Spoonhower variant 1: a suspension parks the *whole* active deque
    /// (its remaining items stay stealable but the owner abandons them
    /// until the resume); the worker continues on a fresh deque.
    WholeDeque,
    /// Spoonhower variant 2: suspension as in the paper, but every resume
    /// creates a *new* deque for the resumed vertices instead of reusing
    /// the original one.
    NewDequeOnResume,
}

/// How resumed vertices are reinjected (ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResumeBatching {
    /// The paper's algorithm: one pfor vertex per resumed deque, unfolding
    /// into a logarithmic-depth tree (parallel, O(1) per round).
    #[default]
    Pfor,
    /// Strawman: the owner moves one resumed vertex per round back onto the
    /// deque — constant work per round but serial reinjection, showing why
    /// the pfor tree is needed when many vertices resume at once.
    OnePerRound,
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Number of virtual workers `P ≥ 1`.
    pub workers: usize,
    /// RNG seed for victim selection.
    pub seed: u64,
    /// Steal policy.
    pub steal_policy: StealPolicy,
    /// Resume reinjection policy.
    pub resume_batching: ResumeBatching,
    /// If true, freed deques are recycled (the paper's Figure 5); if false
    /// every `newDeque()` allocates a fresh slot (ablation).
    pub recycle_deques: bool,
    /// Safety cap on rounds; the simulator panics beyond it (indicates a
    /// livelock bug). `None` picks a generous default from the dag.
    pub max_rounds: Option<u64>,
    /// Record a full per-round event trace (see [`crate::trace`]).
    pub trace: bool,
    /// Suspension/resume policy (the paper's vs. Spoonhower variants).
    pub suspend_policy: SuspendPolicy,
    /// Probability (in percent, 0–100) that a worker is scheduled by the
    /// OS in any given round — the multiprogrammed environment of Arora,
    /// Blumofe & Plaxton, whose analysis the paper builds on. 100 =
    /// dedicated machine (the paper's setting).
    pub availability_pct: u8,
}

impl SimConfig {
    /// Config with `workers` workers and defaults elsewhere.
    pub fn new(workers: usize) -> Self {
        SimConfig {
            workers,
            seed: 0x5EED,
            steal_policy: StealPolicy::default(),
            resume_batching: ResumeBatching::default(),
            recycle_deques: true,
            max_rounds: None,
            trace: false,
            suspend_policy: SuspendPolicy::default(),
            availability_pct: 100,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the steal policy.
    pub fn steal_policy(mut self, p: StealPolicy) -> Self {
        self.steal_policy = p;
        self
    }

    /// Sets the resume-batching policy.
    pub fn resume_batching(mut self, r: ResumeBatching) -> Self {
        self.resume_batching = r;
        self
    }

    /// Enables or disables deque recycling.
    pub fn recycle_deques(mut self, yes: bool) -> Self {
        self.recycle_deques = yes;
        self
    }

    /// Enables event tracing.
    pub fn trace(mut self, yes: bool) -> Self {
        self.trace = yes;
        self
    }

    /// Sets the suspension/resume policy.
    pub fn suspend_policy(mut self, sp: SuspendPolicy) -> Self {
        self.suspend_policy = sp;
        self
    }

    /// Sets the per-round worker scheduling probability (ABP
    /// multiprogrammed environment). Clamped to 1..=100.
    pub fn availability_pct(mut self, pct: u8) -> Self {
        self.availability_pct = pct.clamp(1, 100);
        self
    }
}

/// A deque item: a ready dag vertex, or a pfor vertex carrying ≥ 2 resumed
/// vertices to unfold. Each item carries its depth in the *enabling tree*
/// (the paper's §4.1 analysis device), so Lemma 2 / Corollary 1 can be
/// verified on real executions.
#[derive(Debug, Clone)]
enum Item {
    V(VertexId, u64),
    Pfor(Vec<VertexId>, u64),
}

impl Item {
    fn depth(&self) -> u64 {
        match self {
            Item::V(_, d) | Item::Pfor(_, d) => *d,
        }
    }
}

/// One simulated deque (the paper's deque plus its bookkeeping fields).
#[derive(Debug, Default)]
struct SimDeque {
    /// Items with the round they were pushed (back = bottom, front = top);
    /// the push round anchors the enabling tree's auxiliary chains.
    items: VecDeque<(Item, u64)>,
    suspend_ctr: u64,
    resumed: Vec<VertexId>,
    owner: usize,
    freed: bool,
    in_ready: bool,
    in_resumed: bool,
    /// Enabling depth and round of the last instruction executed from this
    /// deque (the paper's anchor for pfor trees added to empty deques).
    last_exec: Option<(u64, u64)>,
}

/// Per-worker state.
#[derive(Debug, Default)]
struct WorkerState {
    active: Option<usize>,
    /// The assigned item plus the deque it was taken from.
    assigned: Option<(Item, usize)>,
    ready_deques: VecDeque<usize>,
    resumed_deques: VecDeque<usize>,
    empty_deques: Vec<usize>,
    live_deques: u64,
    max_live_deques: u64,
}

/// The latency-hiding work-stealing simulator.
#[derive(Debug)]
pub struct LhwsSim<'a> {
    dag: &'a WDag,
    cfg: SimConfig,
    rng: StdRng,
    deques: Vec<SimDeque>,
    workers: Vec<WorkerState>,
    indeg: Vec<u32>,
    /// Pending resumes: (due round, vertex, deque).
    resumes: BinaryHeap<Reverse<(u64, u32, u32)>>,
    round: u64,
    executed: usize,
    // Stats accumulators.
    work_tokens: u64,
    pfor_vertices: u64,
    switch_tokens: u64,
    steal_attempts: u64,
    steal_successes: u64,
    max_live_suspended: u64,
    entries: Vec<ScheduleEntry>,
    /// Enabling-tree depth of every dag vertex (set when the vertex enters
    /// the tree; suspended vertices enter at resume through pfor trees).
    vertex_depths: Vec<u64>,
    /// The enabling span S*: the maximum depth of any enabling-tree node.
    enabling_span: u64,
    /// Recorded events when tracing is on.
    trace_events: Option<Vec<crate::trace::TraceEvent>>,
    /// Successor of each vertex in the sequential depth-first order
    /// (u32::MAX = last), for Spoonhower's deviation metric.
    dfs_next: Vec<u32>,
    /// Previously executed dag vertex per worker (u32::MAX = none).
    prev_exec: Vec<u32>,
    /// Deviations from the sequential depth-first order.
    deviations: u64,
    /// Rounds a worker lost to the multiprogrammed adversary.
    descheduled_tokens: u64,
}

impl<'a> LhwsSim<'a> {
    /// Creates a simulator for `dag` with the given configuration.
    pub fn new(dag: &'a WDag, cfg: SimConfig) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        let n = dag.len();
        let mut sim = LhwsSim {
            dag,
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            deques: Vec::new(),
            workers: (0..cfg.workers).map(|_| WorkerState::default()).collect(),
            indeg: (0..n).map(|v| dag.in_degree(VertexId(v as u32))).collect(),
            resumes: BinaryHeap::new(),
            round: 0,
            executed: 0,
            work_tokens: 0,
            pfor_vertices: 0,
            switch_tokens: 0,
            steal_attempts: 0,
            steal_successes: 0,
            max_live_suspended: 0,
            entries: Vec::with_capacity(n),
            vertex_depths: vec![0; n],
            enabling_span: 0,
            trace_events: if cfg.trace { Some(Vec::new()) } else { None },
            dfs_next: sequential_dfs_next(dag),
            prev_exec: vec![u32::MAX; cfg.workers],
            deviations: 0,
            descheduled_tokens: 0,
        };
        // Line 24–28: every worker starts with an empty active deque;
        // worker zero is assigned the root.
        for p in 0..cfg.workers {
            let q = sim.new_deque(p);
            sim.workers[p].active = Some(q);
        }
        let q0 = sim.workers[0].active.expect("just set");
        sim.workers[0].assigned = Some((Item::V(dag.root(), 0), q0));
        sim
    }

    /// Runs the computation to completion and returns the statistics.
    pub fn run(mut self) -> SimStats {
        let default_cap = 1_000 + 40 * (self.dag.work() + self.total_latency());
        let cap = self.cfg.max_rounds.unwrap_or(default_cap);
        while self.executed < self.dag.len() {
            self.round += 1;
            assert!(
                self.round <= cap,
                "simulator exceeded {cap} rounds — livelock?"
            );
            self.deliver_resumes();
            self.max_live_suspended = self.max_live_suspended.max(self.resumes.len() as u64);
            for p in 0..self.cfg.workers {
                // Multiprogrammed environment: the OS may not schedule
                // this worker in this round (ABP's adversary, here i.i.d.).
                if self.cfg.availability_pct < 100
                    && self.rng.gen_range(0..100u8) >= self.cfg.availability_pct
                {
                    self.descheduled_tokens += 1;
                    continue;
                }
                self.worker_round(p);
                if self.executed == self.dag.len() {
                    break;
                }
            }
        }
        self.finish()
    }

    fn total_latency(&self) -> u64 {
        self.dag
            .heavy_edges()
            .map(|(_, e)| e.weight)
            .sum::<u64>()
            .max(1)
    }

    fn finish(self) -> SimStats {
        let steal_attempts = self.steal_attempts;
        SimStats {
            workers: self.cfg.workers,
            rounds: self.round,
            work_tokens: self.work_tokens,
            pfor_vertices: self.pfor_vertices,
            switch_tokens: self.switch_tokens,
            steal_attempts,
            steal_successes: self.steal_successes,
            idle_tokens: self.idle_tokens_estimate(),
            deques_allocated: self.deques.len() as u64,
            max_deques_per_worker: self
                .workers
                .iter()
                .map(|w| w.max_live_deques)
                .max()
                .unwrap_or(0),
            max_live_suspended: self.max_live_suspended,
            enabling_span: self.enabling_span,
            vertex_depths: self.vertex_depths,
            deviations: self.deviations,
            trace: self.trace_events.map(|events| crate::trace::Trace {
                events,
                rounds: self.round,
                workers: self.cfg.workers,
            }),
            schedule: Schedule {
                workers: self.cfg.workers,
                entries: self.entries,
                length: self.round,
            },
        }
    }

    /// The final partial round may leave some workers without a token, and
    /// the multiprogrammed adversary deschedules others; count both as
    /// idle so the token identity stays exact.
    fn idle_tokens_estimate(&self) -> u64 {
        let total = self.round * self.cfg.workers as u64;
        total - self.work_tokens - self.switch_tokens - self.steal_attempts
    }

    // ------------------------------------------------------------------
    // Deque management (Figure 5).
    // ------------------------------------------------------------------

    /// `newDeque()`: reuse a deque from the worker's empty list, else
    /// allocate a fresh one with the global counter.
    fn new_deque(&mut self, p: usize) -> usize {
        let q = if self.cfg.recycle_deques {
            self.workers[p].empty_deques.pop()
        } else {
            None
        };
        let q = match q {
            Some(q) => {
                self.deques[q].freed = false;
                q
            }
            None => {
                let id = self.deques.len();
                self.deques.push(SimDeque {
                    owner: p,
                    ..SimDeque::default()
                });
                id
            }
        };
        let w = &mut self.workers[p];
        w.live_deques += 1;
        w.max_live_deques = w.max_live_deques.max(w.live_deques);
        q
    }

    /// `free()`: return the deque to the owner's empty list.
    fn free_deque(&mut self, p: usize, q: usize) {
        debug_assert_eq!(self.deques[q].owner, p);
        debug_assert!(self.deques[q].items.is_empty());
        debug_assert_eq!(self.deques[q].suspend_ctr, 0);
        debug_assert!(self.deques[q].resumed.is_empty());
        self.deques[q].freed = true;
        self.workers[p].empty_deques.push(q);
        self.workers[p].live_deques -= 1;
    }

    // ------------------------------------------------------------------
    // Resume machinery.
    // ------------------------------------------------------------------

    /// Start-of-round delivery: run `callback(v, q)` for every suspension
    /// whose latency has expired.
    fn deliver_resumes(&mut self) {
        while let Some(&Reverse((due, v, q))) = self.resumes.peek() {
            if due > self.round {
                break;
            }
            self.resumes.pop();
            let q = q as usize;
            let dq = &mut self.deques[q];
            dq.resumed.push(VertexId(v));
            dq.suspend_ctr -= 1;
            if !dq.in_resumed {
                dq.in_resumed = true;
                let owner = dq.owner;
                self.workers[owner].resumed_deques.push_back(q);
            }
        }
    }

    /// `addResumedVertices()`: for each resumed deque, push a pfor vertex
    /// that will execute its resumed vertices in parallel, and mark the
    /// deque ready.
    ///
    /// `exec` carries the just-executed vertex's (deque, depth, has-left-
    /// child) when called from the execution path: a pfor attached to the
    /// *active* deque hangs off that vertex in the enabling tree (with one
    /// auxiliary vertex when it also enabled a left child — the paper's
    /// out-degree fix). Pfors attached to other deques hang off the deque's
    /// anchor (bottom item, or last executed instruction) through a chain
    /// of `i − j − 1` auxiliary vertices (§4.1). Returns true if a pfor was
    /// attached to `exec`'s deque, which deepens the left child by one.
    fn add_resumed_vertices(&mut self, p: usize, exec: Option<(usize, u64, bool)>) -> bool {
        let mut attached_to_exec = false;
        match self.cfg.resume_batching {
            ResumeBatching::Pfor => {
                while let Some(q) = self.workers[p].resumed_deques.pop_front() {
                    let depth = self.resume_depth(q, exec, &mut attached_to_exec);
                    let dq = &mut self.deques[q];
                    dq.in_resumed = false;
                    let vs = std::mem::take(&mut dq.resumed);
                    debug_assert!(!vs.is_empty());
                    let item = self.make_item(vs, depth);
                    let target = self.resume_target(p, q);
                    self.push_item(target, item);
                    self.mark_ready(p, target);
                }
            }
            ResumeBatching::OnePerRound => {
                // Move a single resumed vertex per deque per round.
                let count = self.workers[p].resumed_deques.len();
                for _ in 0..count {
                    let Some(q) = self.workers[p].resumed_deques.pop_front() else {
                        break;
                    };
                    let depth = self.resume_depth(q, exec, &mut attached_to_exec);
                    let dq = &mut self.deques[q];
                    let popped = dq.resumed.pop();
                    let target = self.resume_target(p, q);
                    if let Some(v) = popped {
                        let item = self.make_item(vec![v], depth);
                        self.push_item(target, item);
                    }
                    let dq = &mut self.deques[q];
                    if dq.resumed.is_empty() {
                        dq.in_resumed = false;
                    } else {
                        self.workers[p].resumed_deques.push_back(q);
                    }
                    self.mark_ready(p, target);
                }
            }
        }
        attached_to_exec
    }

    /// Where resumed vertices of deque `q` are injected: `q` itself under
    /// the paper's policy, a brand-new deque under Spoonhower variant 2.
    /// In the latter case, an exhausted original deque is freed.
    fn resume_target(&mut self, p: usize, q: usize) -> usize {
        if self.cfg.suspend_policy != SuspendPolicy::NewDequeOnResume {
            return q;
        }
        let target = self.new_deque(p);
        // The original deque may now be fully drained and abandoned.
        let dq = &self.deques[q];
        if dq.items.is_empty()
            && dq.suspend_ctr == 0
            && dq.resumed.is_empty()
            && self.workers[p].active != Some(q)
            && !dq.in_ready
            && !dq.freed
        {
            self.free_deque(p, q);
        }
        target
    }

    /// Enabling-tree depth for a pfor (or resumed vertex) injected into
    /// deque `q` this round.
    fn resume_depth(
        &mut self,
        q: usize,
        exec: Option<(usize, u64, bool)>,
        attached_to_exec: &mut bool,
    ) -> u64 {
        if let Some((eq, edepth, has_left)) = exec {
            if eq == q {
                *attached_to_exec = true;
                // Directly under the just-executed vertex; an auxiliary
                // vertex is inserted when it also has a left child.
                return edepth + if has_left { 2 } else { 1 };
            }
        }
        let dq = &self.deques[q];
        let (adepth, around) = match dq.items.back() {
            Some((item, push_round)) => (item.depth(), *push_round),
            None => dq.last_exec.unwrap_or((0, self.round)),
        };
        // Chain of (i - j - 1) auxiliary vertices plus the final edge.
        adepth + (self.round - around).max(1)
    }

    /// Creates an item, recording enabling-tree bookkeeping.
    fn make_item(&mut self, vs: Vec<VertexId>, depth: u64) -> Item {
        debug_assert!(!vs.is_empty());
        self.enabling_span = self.enabling_span.max(depth);
        if vs.len() == 1 {
            self.vertex_depths[vs[0].index()] = depth;
            Item::V(vs[0], depth)
        } else {
            Item::Pfor(vs, depth)
        }
    }

    /// Pushes an item onto the bottom of `q`, stamping the push round.
    fn push_item(&mut self, q: usize, item: Item) {
        // Structural basis of Lemma 3 (top-heavy deques), from Lemma 2
        // condition 5: enabling-tree depths never increase from the bottom
        // of a deque toward its top, so the top item carries the largest
        // weight w(v) = S* - d(v). Checked in debug builds for the
        // analyzed configuration.
        #[cfg(debug_assertions)]
        if self.cfg.suspend_policy == SuspendPolicy::PerVertex
            && self.cfg.resume_batching == ResumeBatching::Pfor
        {
            if let Some((above, _)) = self.deques[q].items.back() {
                debug_assert!(
                    item.depth() >= above.depth(),
                    "deque depth invariant violated: pushing depth {} under depth {}",
                    item.depth(),
                    above.depth()
                );
            }
        }
        self.deques[q].items.push_back((item, self.round));
    }

    /// Records a trace event when tracing is enabled.
    fn record(&mut self, p: usize, action: crate::trace::Action) {
        if let Some(ev) = &mut self.trace_events {
            ev.push(crate::trace::TraceEvent {
                round: self.round,
                worker: p as u32,
                action,
            });
        }
    }

    /// Adds `q` to the owner's ready set unless it is active or already
    /// there.
    fn mark_ready(&mut self, p: usize, q: usize) {
        if self.workers[p].active == Some(q) || self.deques[q].in_ready {
            return;
        }
        self.deques[q].in_ready = true;
        self.workers[p].ready_deques.push_back(q);
    }

    // ------------------------------------------------------------------
    // The scheduling loop body (Figure 3, lines 31–56).
    // ------------------------------------------------------------------

    fn worker_round(&mut self, p: usize) {
        if let Some((item, from)) = self.workers[p].assigned.take() {
            // Lines 33–40: execute the assigned vertex.
            match item {
                Item::V(v, d) => self.execute_vertex(p, v, d, from),
                Item::Pfor(vs, d) => self.execute_pfor(p, vs, d, from),
            }
            let active = self.workers[p]
                .active
                .expect("executing worker has an active deque");
            self.workers[p].assigned = self.pop_bottom(active).map(|i| (i, active));
        } else {
            // Lines 41–56: release the active deque; switch or steal.
            if let Some(q) = self.workers[p].active.take() {
                let dq = &self.deques[q];
                debug_assert!(dq.items.is_empty(), "active deque released while non-empty");
                if dq.suspend_ctr == 0 && dq.resumed.is_empty() {
                    self.free_deque(p, q);
                }
                // Otherwise the deque parks as a suspended deque.
            }
            // First, try to resume a ready deque.
            if let Some(q) = self.pop_ready(p) {
                self.switch_tokens += 1;
                self.record(p, crate::trace::Action::Switch);
                self.workers[p].active = Some(q);
            } else {
                // Become a thief.
                self.steal_attempts += 1;
                let stolen = self.try_steal(p);
                self.record(p, crate::trace::Action::Steal(stolen.is_some()));
                if let Some((stolen, victim)) = stolen {
                    self.steal_successes += 1;
                    self.workers[p].assigned = Some((stolen, victim));
                    let q = self.new_deque(p);
                    self.workers[p].active = Some(q);
                }
            }
            self.add_resumed_vertices(p, None);
            if self.workers[p].assigned.is_none() {
                if let Some(q) = self.workers[p].active {
                    self.workers[p].assigned = self.pop_bottom(q).map(|i| (i, q));
                }
            }
        }
    }

    fn pop_ready(&mut self, p: usize) -> Option<usize> {
        let q = self.workers[p].ready_deques.pop_front()?;
        self.deques[q].in_ready = false;
        Some(q)
    }

    fn pop_bottom(&mut self, q: usize) -> Option<Item> {
        self.deques[q].items.pop_back().map(|(item, _)| item)
    }

    fn try_steal(&mut self, p: usize) -> Option<(Item, usize)> {
        let victim = match self.cfg.steal_policy {
            StealPolicy::RandomDeque => {
                // Uniform over all ever-allocated deques, freed or not.
                let n = self.deques.len();
                debug_assert!(n > 0);
                self.rng.gen_range(0..n)
            }
            StealPolicy::WorkerThenDeque => {
                // Random other worker, then a random non-empty deque of
                // theirs (active or parked).
                if self.cfg.workers == 1 {
                    return None;
                }
                let mut v = self.rng.gen_range(0..self.cfg.workers - 1);
                if v >= p {
                    v += 1;
                }
                let candidates: Vec<usize> = (0..self.deques.len())
                    .filter(|&q| {
                        self.deques[q].owner == v
                            && !self.deques[q].freed
                            && !self.deques[q].items.is_empty()
                    })
                    .collect();
                if candidates.is_empty() {
                    return None;
                }
                candidates[self.rng.gen_range(0..candidates.len())]
            }
        };
        // popTop
        self.deques[victim]
            .items
            .pop_front()
            .map(|(item, _)| (item, victim))
    }

    // ------------------------------------------------------------------
    // Vertex execution.
    // ------------------------------------------------------------------

    fn execute_vertex(&mut self, p: usize, v: VertexId, depth: u64, from: usize) {
        self.work_tokens += 1;
        self.executed += 1;
        self.record(p, crate::trace::Action::Execute(v));
        // Spoonhower's deviation metric: does this worker continue where
        // the sequential depth-first execution would?
        let prev = self.prev_exec[p];
        if prev != u32::MAX && self.dfs_next[prev as usize] != v.0 {
            self.deviations += 1;
        }
        self.prev_exec[p] = v.0;
        self.deques[from].last_exec = Some((depth, self.round));
        self.entries.push(ScheduleEntry {
            round: self.round,
            worker: p,
            vertex: v,
        });

        // Collect the children this execution *enables* (in-degree drops to
        // zero), keeping the left/right orientation of the dag.
        let mut left: Option<(VertexId, u64)> = None;
        let mut right: Option<(VertexId, u64)> = None;
        let outs = self.dag.out(v);
        if let Some(e) = outs.left() {
            self.indeg[e.dst.index()] -= 1;
            if self.indeg[e.dst.index()] == 0 {
                left = Some((e.dst, e.weight));
            }
        }
        if let Some(e) = outs.right() {
            self.indeg[e.dst.index()] -= 1;
            if self.indeg[e.dst.index()] == 0 {
                right = Some((e.dst, e.weight));
            }
        }

        // Lines 35–39: right child, addResumedVertices, left child.
        if let Some((c, w)) = right {
            self.handle_child(p, c, w, depth + 1);
        }
        let active = self.workers[p]
            .active
            .expect("active deque during execution");
        let pfor_attached = self.add_resumed_vertices(p, Some((active, depth, left.is_some())));
        if let Some((c, w)) = left {
            // The auxiliary vertex inserted for a same-deque pfor deepens
            // the left child by one (paper §4.1, first case).
            let d = depth + if pfor_attached { 2 } else { 1 };
            self.handle_child(p, c, w, d);
        }
    }

    /// Spoonhower variant 1: park the whole active deque (items and all)
    /// and continue on a fresh one. The parked deque stays stealable; it
    /// returns to the ready set when its suspension resumes.
    fn park_active_deque(&mut self, p: usize) {
        let old = self.workers[p].active.expect("active deque to park");
        debug_assert!(self.deques[old].suspend_ctr > 0);
        let fresh = self.new_deque(p);
        self.workers[p].active = Some(fresh);
        let _ = old; // parked: neither ready nor free until resume
    }

    /// `handleChild`: suspended children are paired with the active deque;
    /// ready children are pushed onto its bottom.
    fn handle_child(&mut self, p: usize, c: VertexId, weight: u64, depth: u64) {
        let q = self.workers[p]
            .active
            .expect("active deque during execution");
        if weight > 1 {
            // Heavy edge: the child suspends; the callback fires when the
            // latency expires (executed in round r, ready at r + weight).
            // Its enabling depth is assigned at resume, through the pfor.
            self.deques[q].suspend_ctr += 1;
            self.resumes
                .push(Reverse((self.round + weight, c.0, q as u32)));
            if self.cfg.suspend_policy == SuspendPolicy::WholeDeque {
                self.park_active_deque(p);
            }
        } else {
            let item = self.make_item(vec![c], depth);
            self.push_item(q, item);
        }
    }

    /// Executes a pfor-tree internal vertex: splits its vertex list in two
    /// and pushes both halves (a balanced unfolding with lg n span whose
    /// leaves are the resumed vertices).
    fn execute_pfor(&mut self, p: usize, mut vs: Vec<VertexId>, depth: u64, from: usize) {
        debug_assert!(vs.len() >= 2);
        self.work_tokens += 1;
        self.pfor_vertices += 1;
        self.record(p, crate::trace::Action::ExecutePfor(vs.len() as u32));
        self.deques[from].last_exec = Some((depth, self.round));
        let q = self.workers[p]
            .active
            .expect("active deque during execution");
        let right = vs.split_off(vs.len() / 2);
        // Push the right half first so the left half sits at the bottom
        // (executed next by this worker; the right half is stealable).
        let r = self.make_item(right, depth + 1);
        self.push_item(q, r);
        let l = self.make_item(vs, depth + 1);
        self.push_item(q, l);
        self.add_resumed_vertices(p, Some((q, depth, false)));
    }
}

/// Successor map of the sequential depth-first execution order (what a
/// single standard work-stealing worker would run, latency ignored):
/// `next[v]` is the vertex executed right after `v`, or `u32::MAX` for the
/// final vertex. Basis of Spoonhower's deviation metric.
fn sequential_dfs_next(dag: &WDag) -> Vec<u32> {
    let n = dag.len();
    let mut indeg: Vec<u32> = (0..n).map(|v| dag.in_degree(VertexId(v as u32))).collect();
    let mut stack = vec![dag.root()];
    let mut next = vec![u32::MAX; n];
    let mut prev: Option<VertexId> = None;
    while let Some(v) = stack.pop() {
        if let Some(pv) = prev {
            next[pv.index()] = v.0;
        }
        prev = Some(v);
        // Push right then left so the left child pops first, matching the
        // scheduler's pop-bottom order.
        if let Some(e) = dag.out(v).right() {
            indeg[e.dst.index()] -= 1;
            if indeg[e.dst.index()] == 0 {
                stack.push(e.dst);
            }
        }
        if let Some(e) = dag.out(v).left() {
            indeg[e.dst.index()] -= 1;
            if indeg[e.dst.index()] == 0 {
                stack.push(e.dst);
            }
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhws_dag::gen::{fib, map_reduce, pipeline, random_sp, server, RandomSpParams};
    use lhws_dag::offline::validate_schedule;
    use lhws_dag::suspension_width;
    use lhws_dag::Block;

    fn run(dag: &WDag, p: usize, seed: u64) -> SimStats {
        LhwsSim::new(dag, SimConfig::new(p).seed(seed)).run()
    }

    #[test]
    fn single_vertex() {
        let d = Block::work(1).build();
        let s = run(&d, 1, 0);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.work_tokens, 1);
        validate_schedule(&d, &s.schedule).unwrap();
    }

    #[test]
    fn chain_executes_in_order() {
        let d = Block::work(20).build();
        let s = run(&d, 4, 0);
        validate_schedule(&d, &s.schedule).unwrap();
        assert_eq!(s.work_tokens, 20);
        assert_eq!(s.pfor_vertices, 0);
        // A chain admits no parallelism: 20 rounds of execution.
        assert_eq!(s.schedule.entries.len(), 20);
    }

    #[test]
    fn fork_join_executes_every_vertex_once() {
        let d = Block::par_tree(32, &mut |_| Block::work(4)).build();
        for p in [1usize, 2, 4, 8] {
            let s = run(&d, p, 42);
            validate_schedule(&d, &s.schedule).unwrap();
            assert_eq!(s.schedule.entries.len(), d.len());
            assert!(s.token_identity_holds());
        }
    }

    #[test]
    fn latency_is_respected() {
        let d = Block::seq([Block::latency(100), Block::work(1)]).build();
        let s = run(&d, 2, 0);
        validate_schedule(&d, &s.schedule).unwrap();
        assert!(s.rounds > 100);
        assert!(s.max_live_suspended >= 1);
    }

    #[test]
    fn u_zero_uses_one_deque_per_worker() {
        // The reduction-to-standard-work-stealing case: with no heavy
        // edges, no worker ever owns more than one deque.
        let d = fib(12, 4).dag;
        for p in [1usize, 2, 4] {
            let s = run(&d, p, 7);
            validate_schedule(&d, &s.schedule).unwrap();
            assert_eq!(s.max_deques_per_worker, 1, "P={p}");
            assert_eq!(s.pfor_vertices, 0);
            assert_eq!(s.max_live_suspended, 0);
        }
    }

    #[test]
    fn lemma7_deque_bound() {
        // max deques per worker <= U + 1.
        for (wl, label) in [
            (map_reduce(16, 30, 4, 1), "map_reduce"),
            (server(10, 25, 6, 1), "server"),
            (pipeline(4, 3, 20, 2), "pipeline"),
        ] {
            let u = suspension_width(&wl.dag);
            for p in [1usize, 2, 4, 8] {
                let s = run(&wl.dag, p, 99);
                validate_schedule(&wl.dag, &s.schedule).unwrap();
                assert!(
                    s.max_deques_per_worker <= u + 1,
                    "{label} P={p}: {} > U+1 = {}",
                    s.max_deques_per_worker,
                    u + 1
                );
            }
        }
    }

    #[test]
    fn suspended_count_bounded_by_u() {
        for seed in 0..8 {
            let wl = random_sp(RandomSpParams::default().seed(seed));
            let u = suspension_width(&wl.dag);
            let s = run(&wl.dag, 4, seed);
            validate_schedule(&wl.dag, &s.schedule).unwrap();
            assert!(
                s.max_live_suspended <= u,
                "seed {seed}: live {} > U {}",
                s.max_live_suspended,
                u
            );
        }
    }

    #[test]
    fn lemma1_round_bound() {
        for (wl, label) in [
            (map_reduce(32, 40, 8, 1), "map_reduce"),
            (server(15, 30, 6, 1), "server"),
            (fib(11, 3), "fib"),
        ] {
            for p in [1usize, 2, 4, 8] {
                let s = run(&wl.dag, p, 3);
                assert!(
                    s.rounds <= s.lemma1_bound(wl.dag.work()) + 1,
                    "{label} P={p}: rounds {} > bound {}",
                    s.rounds,
                    s.lemma1_bound(wl.dag.work())
                );
            }
        }
    }

    #[test]
    fn pfor_internal_vertices_bounded_by_work() {
        // W + W_pfor <= 2W (binary tree internal nodes <= leaves).
        let wl = map_reduce(64, 10, 2, 1);
        let s = run(&wl.dag, 8, 5);
        assert!(s.work_tokens <= 2 * wl.dag.work());
        assert_eq!(s.work_tokens - s.pfor_vertices, wl.dag.work());
    }

    /// A dag whose root broadcast vertex has two heavy out-edges of equal
    /// latency: both children suspend on the same deque in the same round
    /// and resume in the same round, deterministically exercising the
    /// batched (pfor) resume path.
    fn broadcast_dag(delta: u64, tail: u64) -> WDag {
        use lhws_dag::{RawDagBuilder, VertexKind};
        let mut b = RawDagBuilder::new();
        let root = b.add_vertex(VertexKind::Io);
        let mut join_in = Vec::new();
        for _ in 0..2 {
            let first = b.add_vertex(VertexKind::Compute);
            b.add_edge(root, first, delta);
            let mut cur = first;
            for _ in 1..tail {
                let nxt = b.add_vertex(VertexKind::Compute);
                b.add_edge(cur, nxt, 1);
                cur = nxt;
            }
            join_in.push(cur);
        }
        let join = b.add_vertex(VertexKind::Join);
        b.add_edge(join_in[0], join, 1);
        b.add_edge(join_in[1], join, 1);
        b.build().unwrap()
    }

    #[test]
    fn simultaneous_resumes_create_pfor_tree() {
        let d = broadcast_dag(25, 10);
        let s = run(&d, 2, 11);
        validate_schedule(&d, &s.schedule).unwrap();
        assert!(
            s.pfor_vertices >= 1,
            "two same-round resumes on one deque must batch into a pfor node"
        );
        assert!(s.work_tokens - s.pfor_vertices == d.work());
    }

    #[test]
    fn scatter_gather_mass_resume_uses_pfor() {
        use lhws_dag::gen::scatter_gather;
        let n = 128u64;
        let wl = scatter_gather(n, 2 * n, 4);
        let s = run(&wl.dag, 8, 3);
        validate_schedule(&wl.dag, &s.schedule).unwrap();
        // All n responses land in one round on one deque: the pfor tree
        // must unfold with ~n internal nodes.
        assert!(
            s.pfor_vertices >= n / 2,
            "expected a large pfor tree, got {} internal nodes",
            s.pfor_vertices
        );
        // And reinjection is parallel: serial (one per round) would need
        // >= n extra rounds beyond the round trip.
        let serial = LhwsSim::new(
            &wl.dag,
            SimConfig::new(8)
                .seed(3)
                .resume_batching(ResumeBatching::OnePerRound),
        )
        .run();
        assert!(
            s.rounds < serial.rounds,
            "pfor {} must beat serial {}",
            s.rounds,
            serial.rounds
        );
    }

    #[test]
    fn mass_resume_still_parallelizes() {
        // Even with staggered resumes, LHWS keeps all workers fed: total
        // rounds stay far below the blocking-serial regime.
        let wl = map_reduce(64, 50, 8, 1);
        let s = run(&wl.dag, 8, 11);
        validate_schedule(&wl.dag, &s.schedule).unwrap();
        assert!(s.rounds < wl.dag.work());
    }

    #[test]
    fn deterministic_given_seed() {
        let wl = map_reduce(16, 25, 4, 1);
        let a = run(&wl.dag, 4, 1234);
        let b = run(&wl.dag, 4, 1234);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.steal_attempts, b.steal_attempts);
        assert_eq!(a.schedule.entries, b.schedule.entries);
    }

    #[test]
    fn seeds_change_executions() {
        let wl = map_reduce(16, 25, 4, 1);
        let a = run(&wl.dag, 4, 1);
        let b = run(&wl.dag, 4, 2);
        // Work is identical; steal patterns almost surely differ.
        assert_eq!(a.work_tokens, b.work_tokens);
        assert!(a.steal_attempts != b.steal_attempts || a.schedule.entries != b.schedule.entries);
    }

    #[test]
    fn worker_then_deque_policy_completes() {
        let wl = map_reduce(16, 25, 4, 1);
        for p in [2usize, 4] {
            let s = LhwsSim::new(
                &wl.dag,
                SimConfig::new(p)
                    .seed(9)
                    .steal_policy(StealPolicy::WorkerThenDeque),
            )
            .run();
            validate_schedule(&wl.dag, &s.schedule).unwrap();
        }
    }

    #[test]
    fn worker_then_deque_fails_less() {
        let wl = map_reduce(64, 30, 16, 2);
        let rd = LhwsSim::new(
            &wl.dag,
            SimConfig::new(8)
                .seed(4)
                .steal_policy(StealPolicy::RandomDeque),
        )
        .run();
        let wd = LhwsSim::new(
            &wl.dag,
            SimConfig::new(8)
                .seed(4)
                .steal_policy(StealPolicy::WorkerThenDeque),
        )
        .run();
        assert!(
            wd.steal_success_pct() >= rd.steal_success_pct(),
            "targeted steals should fail no more often: {} vs {}",
            wd.steal_success_pct(),
            rd.steal_success_pct()
        );
    }

    #[test]
    fn one_per_round_resume_is_slower_on_mass_resume() {
        let wl = map_reduce(128, 60, 2, 1);
        let pfor = LhwsSim::new(&wl.dag, SimConfig::new(8).seed(21)).run();
        let serial = LhwsSim::new(
            &wl.dag,
            SimConfig::new(8)
                .seed(21)
                .resume_batching(ResumeBatching::OnePerRound),
        )
        .run();
        validate_schedule(&wl.dag, &serial.schedule).unwrap();
        assert!(
            serial.rounds >= pfor.rounds,
            "serial reinjection cannot beat the pfor tree: {} vs {}",
            serial.rounds,
            pfor.rounds
        );
    }

    #[test]
    fn no_recycling_allocates_more_deques() {
        let wl = server(30, 20, 4, 1);
        let rec = LhwsSim::new(&wl.dag, SimConfig::new(4).seed(2)).run();
        let no_rec = LhwsSim::new(&wl.dag, SimConfig::new(4).seed(2).recycle_deques(false)).run();
        validate_schedule(&wl.dag, &no_rec.schedule).unwrap();
        assert!(no_rec.deques_allocated >= rec.deques_allocated);
    }

    #[test]
    fn all_random_sp_validate() {
        for seed in 0..12 {
            let wl = random_sp(RandomSpParams::default().seed(seed).target_leaves(30));
            for p in [1usize, 3, 8] {
                let s = run(&wl.dag, p, seed * 31 + p as u64);
                validate_schedule(&wl.dag, &s.schedule)
                    .unwrap_or_else(|e| panic!("seed {seed} P={p}: {e}"));
                assert!(s.token_identity_holds());
            }
        }
    }

    /// `lg U` as the analysis uses it (0 for U <= 1).
    fn lg(u: u64) -> u64 {
        if u <= 1 {
            0
        } else {
            64 - (u - 1).leading_zeros() as u64
        }
    }

    #[test]
    fn lemma2_condition1_depth_bound() {
        // d(v) <= (2 + lg U) * d_G(v) for every executed vertex.
        use lhws_dag::metrics::weighted_depths;
        for (wl, label) in [
            (map_reduce(32, 40, 6, 1), "map_reduce"),
            (server(12, 25, 6, 1), "server"),
            (pipeline(4, 3, 20, 2), "pipeline"),
            (lhws_dag::gen::scatter_gather(32, 80, 3), "scatter_gather"),
        ] {
            let u = suspension_width(&wl.dag);
            let dg = weighted_depths(&wl.dag);
            for p in [1usize, 4] {
                let s = run(&wl.dag, p, 17);
                let factor = 2 + lg(u);
                for (v, &dgv) in dg.iter().enumerate() {
                    assert!(
                        s.vertex_depths[v] <= factor * dgv.max(u64::from(dgv == 0)),
                        "{label} P={p} v{v}: d={} > ({factor})*dG={dgv}",
                        s.vertex_depths[v],
                    );
                }
            }
        }
    }

    #[test]
    fn corollary1_enabling_span_bound() {
        // S* <= 2 * S * (1 + lg U).
        use lhws_dag::Metrics;
        for (wl, label) in [
            (map_reduce(64, 60, 8, 1), "map_reduce"),
            (server(20, 30, 8, 1), "server"),
            (fib(12, 4), "fib"),
            (lhws_dag::gen::scatter_gather(64, 140, 4), "scatter_gather"),
        ] {
            let m = Metrics::compute(&wl.dag);
            let u = suspension_width(&wl.dag);
            for p in [1usize, 2, 8] {
                let s = run(&wl.dag, p, 23);
                let bound = 2 * m.span * (1 + lg(u));
                assert!(
                    s.enabling_span <= bound.max(m.span),
                    "{label} P={p}: S*={} > 2S(1+lgU)={bound}",
                    s.enabling_span
                );
            }
        }
    }

    #[test]
    fn enabling_span_on_random_programs() {
        use lhws_dag::Metrics;
        for seed in 0..10 {
            let wl = random_sp(RandomSpParams::default().seed(seed).target_leaves(30));
            let m = Metrics::compute(&wl.dag);
            let u = suspension_width(&wl.dag);
            let s = run(&wl.dag, 4, seed);
            let bound = (2 * m.span * (1 + lg(u))).max(m.span);
            assert!(
                s.enabling_span <= bound,
                "seed {seed}: S*={} > {bound} (S={}, U={u})",
                s.enabling_span,
                m.span
            );
        }
    }

    #[test]
    fn unweighted_enabling_tree_not_deeper_than_dag() {
        use lhws_dag::metrics::weighted_depths;
        let wl = fib(12, 4);
        let dg = weighted_depths(&wl.dag);
        let s = run(&wl.dag, 4, 9);
        // With no heavy edges there are no pfor trees and no auxiliary
        // vertices: the enabling tree embeds in the dag, depth-wise.
        for (v, &dgv) in dg.iter().enumerate() {
            assert!(
                s.vertex_depths[v] <= dgv,
                "v{v}: enabling depth {} exceeds dag depth {dgv}",
                s.vertex_depths[v],
            );
        }
        assert!(s.enabling_span <= *dg.iter().max().unwrap());
    }

    #[test]
    fn sequential_execution_has_zero_deviations() {
        // One worker, no latency: execution IS the depth-first order.
        let d = fib(11, 3).dag;
        let s = run(&d, 1, 0);
        assert_eq!(s.deviations, 0, "P=1 unweighted: pure DFS");
    }

    #[test]
    fn steals_cause_deviations() {
        let d = fib(12, 3).dag;
        for seed in 0..20 {
            let s = run(&d, 4, seed);
            assert!(s.deviations > 0, "parallel execution deviates");
            // Every deviation is caused by a steal, a switch, or a resume;
            // with no latency, each successful steal accounts for at most
            // two: the first vertex of the stolen run, and the join
            // continuation executed out of depth-first position when the
            // branches reunite.
            assert!(
                s.deviations <= 2 * s.steal_successes + s.switch_tokens + 1,
                "seed {seed}: deviations {} vs steals {} + switches {}",
                s.deviations,
                s.steal_successes,
                s.switch_tokens
            );
        }
    }

    #[test]
    fn latency_induces_deviations_even_sequentially() {
        // Map-reduce at P=1: the worker keeps issuing fetches while
        // earlier ones are suspended, so resumed continuations run far
        // from their depth-first positions.
        let wl = map_reduce(16, 30, 4, 1);
        let s = run(&wl.dag, 1, 0);
        assert!(s.deviations > 0, "suspension reorders execution");
        // The server at P=1 is the contrast case: resumes always arrive
        // while the worker is idle, so execution stays depth-first.
        let sv = server(10, 30, 4, 1);
        let s2 = run(&sv.dag, 1, 0);
        assert_eq!(s2.deviations, 0, "U=1 server stays in DFS order");
    }

    #[test]
    fn whole_deque_variant_is_correct_but_heavier() {
        for (wl, label) in [
            (map_reduce(32, 40, 6, 1), "map_reduce"),
            (server(12, 25, 6, 1), "server"),
        ] {
            for p in [1usize, 4] {
                let paper = run(&wl.dag, p, 7);
                let variant = LhwsSim::new(
                    &wl.dag,
                    SimConfig::new(p)
                        .seed(7)
                        .suspend_policy(SuspendPolicy::WholeDeque),
                )
                .run();
                validate_schedule(&wl.dag, &variant.schedule)
                    .unwrap_or_else(|e| panic!("{label} P={p}: {e}"));
                assert_eq!(variant.schedule.entries.len(), wl.dag.len());
                // Parking whole deques cannot allocate fewer deques than
                // the per-vertex policy.
                assert!(
                    variant.deques_allocated >= paper.deques_allocated,
                    "{label} P={p}: {} < {}",
                    variant.deques_allocated,
                    paper.deques_allocated
                );
            }
        }
    }

    #[test]
    fn new_deque_on_resume_variant_is_correct_but_churns() {
        let wl = server(30, 25, 6, 1);
        for p in [1usize, 4] {
            let paper = run(&wl.dag, p, 7);
            let variant = LhwsSim::new(
                &wl.dag,
                SimConfig::new(p)
                    .seed(7)
                    .suspend_policy(SuspendPolicy::NewDequeOnResume),
            )
            .run();
            validate_schedule(&wl.dag, &variant.schedule).unwrap();
            assert_eq!(variant.schedule.entries.len(), wl.dag.len());
            // Creating a deque per resume churns more deques than the
            // paper's recycle-on-steal policy on a long server run (the
            // paper: "new deques are created on steals, not resumes").
            assert!(
                variant.switch_tokens >= paper.switch_tokens,
                "P={p}: resume-created deques force extra switches ({} < {})",
                variant.switch_tokens,
                paper.switch_tokens
            );
        }
    }

    #[test]
    fn variants_complete_random_programs() {
        for seed in 0..6 {
            let wl = random_sp(RandomSpParams::default().seed(seed).target_leaves(25));
            for policy in [
                SuspendPolicy::PerVertex,
                SuspendPolicy::WholeDeque,
                SuspendPolicy::NewDequeOnResume,
            ] {
                let s = LhwsSim::new(&wl.dag, SimConfig::new(4).seed(seed).suspend_policy(policy))
                    .run();
                validate_schedule(&wl.dag, &s.schedule)
                    .unwrap_or_else(|e| panic!("seed {seed} {policy:?}: {e}"));
            }
        }
    }

    #[test]
    fn multiprogrammed_environment_correct() {
        // The ABP adversary (here i.i.d. descheduling) slows execution but
        // never breaks it.
        let wl = map_reduce(32, 40, 6, 1);
        for pct in [25u8, 50, 75] {
            let s = LhwsSim::new(&wl.dag, SimConfig::new(4).seed(9).availability_pct(pct)).run();
            validate_schedule(&wl.dag, &s.schedule).unwrap_or_else(|e| panic!("pct={pct}: {e}"));
            assert_eq!(s.schedule.entries.len(), wl.dag.len());
        }
    }

    #[test]
    fn lower_availability_means_more_rounds() {
        let wl = fib(12, 3);
        let full = LhwsSim::new(&wl.dag, SimConfig::new(4).seed(3)).run();
        let half = LhwsSim::new(&wl.dag, SimConfig::new(4).seed(3).availability_pct(50)).run();
        let quarter = LhwsSim::new(&wl.dag, SimConfig::new(4).seed(3).availability_pct(25)).run();
        assert!(half.rounds > full.rounds);
        assert!(quarter.rounds > half.rounds);
        // ABP-style scaling: halving availability roughly doubles time on
        // a work-bound computation (loose factor-of-three sanity band).
        assert!(half.rounds < full.rounds * 3);
    }

    #[test]
    fn more_workers_never_catastrophically_slower() {
        let wl = map_reduce(64, 100, 32, 2);
        let s1 = run(&wl.dag, 1, 8).rounds;
        let s8 = run(&wl.dag, 8, 8).rounds;
        assert!(s8 < s1, "adding workers helps this workload");
    }
}
