//! Execution traces: per-round, per-worker event logs.
//!
//! With [`SimConfig::trace`](crate::SimConfig) enabled, the LHWS simulator
//! records what every worker did in every round. The trace powers
//! utilization analysis (how much of the schedule was work vs. switching
//! vs. stealing — the three token buckets of Lemma 1, now *per worker*)
//! and an ASCII timeline that makes latency hiding visible at a glance:
//! where the blocking baseline shows holes, LHWS shows steals that land.

use lhws_dag::VertexId;

/// One worker action in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Executed a dag vertex.
    Execute(VertexId),
    /// Executed a pfor-tree internal vertex over a batch of this size.
    ExecutePfor(u32),
    /// Switched to a ready deque.
    Switch,
    /// Attempted a steal (`true` = got a vertex).
    Steal(bool),
}

/// A recorded event: `(round, worker, action)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Round number (1-based).
    pub round: u64,
    /// Worker index.
    pub worker: u32,
    /// What the worker did.
    pub action: Action,
}

/// A complete execution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Events in (round, worker-visit) order. Rounds with no event for a
    /// worker mean the worker was idle (baseline only; LHWS workers always
    /// act).
    pub events: Vec<TraceEvent>,
    /// Total rounds in the execution.
    pub rounds: u64,
    /// Number of workers.
    pub workers: usize,
}

/// Per-worker action counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerUtilization {
    /// Dag-vertex executions.
    pub executes: u64,
    /// Pfor-vertex executions.
    pub pfors: u64,
    /// Deque switches.
    pub switches: u64,
    /// Failed steal attempts.
    pub steals_missed: u64,
    /// Successful steal attempts.
    pub steals_hit: u64,
    /// Rounds with no recorded action (idle/blocked).
    pub idle: u64,
}

impl WorkerUtilization {
    /// Fraction of rounds spent executing (work tokens), in percent.
    pub fn busy_pct(&self, rounds: u64) -> u64 {
        ((self.executes + self.pfors) * 100)
            .checked_div(rounds)
            .unwrap_or(0)
    }
}

impl Trace {
    /// Per-worker utilization breakdown.
    pub fn utilization(&self) -> Vec<WorkerUtilization> {
        let mut out = vec![WorkerUtilization::default(); self.workers];
        for e in &self.events {
            let u = &mut out[e.worker as usize];
            match e.action {
                Action::Execute(_) => u.executes += 1,
                Action::ExecutePfor(_) => u.pfors += 1,
                Action::Switch => u.switches += 1,
                Action::Steal(true) => u.steals_hit += 1,
                Action::Steal(false) => u.steals_missed += 1,
            }
        }
        for u in &mut out {
            let acted = u.executes + u.pfors + u.switches + u.steals_hit + u.steals_missed;
            u.idle = self.rounds.saturating_sub(acted);
        }
        out
    }

    /// Number of dag vertices executed in each round (the parallelism
    /// profile of the execution).
    pub fn parallelism_profile(&self) -> Vec<u32> {
        let mut prof = vec![0u32; self.rounds as usize + 1];
        for e in &self.events {
            if matches!(e.action, Action::Execute(_)) {
                prof[e.round as usize] += 1;
            }
        }
        prof
    }

    /// ASCII timeline: one row per worker, one column per round (bucketed
    /// to at most `max_cols` columns). `#` work, `p` pfor, `-` switch,
    /// `s`/`.` steal hit/miss, space idle. Bucketed cells show the
    /// dominant action.
    pub fn timeline_ascii(&self, max_cols: usize) -> String {
        let max_cols = max_cols.max(1);
        let bucket = (self.rounds as usize).div_ceil(max_cols).max(1);
        let cols = (self.rounds as usize).div_ceil(bucket);
        // counts[worker][col][kind]
        let mut counts = vec![vec![[0u32; 5]; cols]; self.workers];
        for e in &self.events {
            let col = ((e.round as usize).saturating_sub(1)) / bucket;
            let kind = match e.action {
                Action::Execute(_) => 0,
                Action::ExecutePfor(_) => 1,
                Action::Switch => 2,
                Action::Steal(true) => 3,
                Action::Steal(false) => 4,
            };
            counts[e.worker as usize][col][kind] += 1;
        }
        let glyphs = ['#', 'p', '-', 's', '.'];
        let mut out = String::new();
        for (w, row) in counts.iter().enumerate() {
            out.push_str(&format!("w{w:<3}|"));
            for cell in row {
                let total: u32 = cell.iter().sum();
                if total == 0 {
                    out.push(' ');
                } else {
                    let (best, _) = cell
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, c)| **c)
                        .expect("non-empty");
                    out.push(glyphs[best]);
                }
            }
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lhws::{LhwsSim, SimConfig};
    use lhws_dag::gen::{fib, map_reduce};

    fn traced(dag: &lhws_dag::WDag, p: usize) -> Trace {
        LhwsSim::new(dag, SimConfig::new(p).seed(1).trace(true))
            .run()
            .trace
            .expect("trace enabled")
    }

    #[test]
    fn trace_event_counts_match_stats() {
        let wl = map_reduce(16, 30, 4, 1);
        let stats = LhwsSim::new(&wl.dag, SimConfig::new(4).seed(1).trace(true)).run();
        let trace = stats.trace.as_ref().unwrap();
        let ut = trace.utilization();
        let executes: u64 = ut.iter().map(|u| u.executes).sum();
        let pfors: u64 = ut.iter().map(|u| u.pfors).sum();
        let steals: u64 = ut.iter().map(|u| u.steals_hit + u.steals_missed).sum();
        let switches: u64 = ut.iter().map(|u| u.switches).sum();
        assert_eq!(executes + pfors, stats.work_tokens);
        assert_eq!(pfors, stats.pfor_vertices);
        assert_eq!(steals, stats.steal_attempts);
        assert_eq!(switches, stats.switch_tokens);
    }

    #[test]
    fn trace_disabled_by_default() {
        let wl = fib(10, 3);
        let stats = LhwsSim::new(&wl.dag, SimConfig::new(2)).run();
        assert!(stats.trace.is_none());
    }

    #[test]
    fn parallelism_profile_sums_to_work() {
        let wl = fib(12, 3);
        let t = traced(&wl.dag, 4);
        let prof = t.parallelism_profile();
        assert_eq!(prof.iter().map(|&c| c as u64).sum::<u64>(), wl.dag.work());
        assert!(prof.iter().all(|&c| c as usize <= 4), "at most P per round");
    }

    #[test]
    fn timeline_has_one_row_per_worker() {
        let wl = map_reduce(8, 20, 4, 1);
        let t = traced(&wl.dag, 3);
        let tl = t.timeline_ascii(60);
        assert_eq!(tl.lines().count(), 3);
        assert!(tl.contains('#'), "some work must show");
    }

    #[test]
    fn timeline_width_bounded() {
        let wl = map_reduce(32, 100, 8, 1);
        let t = traced(&wl.dag, 2);
        let tl = t.timeline_ascii(40);
        for line in tl.lines() {
            // "wN  |" prefix + cells + "|"
            assert!(line.len() <= 5 + 40 + 1, "line too wide: {}", line.len());
        }
    }

    #[test]
    fn busy_pct_sane() {
        let wl = fib(12, 3);
        let t = traced(&wl.dag, 1);
        let ut = t.utilization();
        // Single worker on a pure computation: almost always executing.
        assert!(ut[0].busy_pct(t.rounds) >= 95, "{:?}", ut[0]);
    }
}
