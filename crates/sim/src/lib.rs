//! Deterministic round-based simulator of latency-hiding work stealing.
//!
//! This crate executes the paper's scheduling algorithm (Figure 3) *as
//! written*, at vertex granularity, over weighted dags from [`lhws_dag`],
//! with any number of **virtual** workers. One iteration of the scheduling
//! loop is a *round*; each worker takes exactly one action per round
//! (execute / switch deques / attempt a steal), which is precisely the
//! token-accounting model of the paper's analysis (§4). Because it is
//! single-threaded and seeded, every run is exactly reproducible, so the
//! test-suite can check every lemma and theorem of the paper empirically:
//!
//! * **Lemma 1** — rounds ≤ `(4W + R)/P` where `R` counts steal attempts;
//! * **Lemma 7** — no worker ever owns more than `U + 1` allocated deques;
//! * **Theorem 2** — rounds scale as `O(W/P + S·U·(1 + lg U))`;
//! * the **`U = 0` reduction** — with no heavy edges the algorithm behaves
//!   as standard work stealing (exactly one deque per worker).
//!
//! A blocking work-stealing **baseline** ([`baseline`]) models the paper's
//! comparator: a classic one-deque-per-worker work stealer whose workers
//! block for the full latency of a heavy edge. Comparing the two across a
//! `P` sweep regenerates the *shape* of the paper's Figure 11 without
//! needing a 30-core machine ([`speedup`]).

#![warn(missing_docs)]

pub mod baseline;
pub mod lhws;
pub mod speedup;
pub mod stats;
pub mod trace;

pub use baseline::BaselineSim;
pub use lhws::{LhwsSim, ResumeBatching, SimConfig, StealPolicy, SuspendPolicy};
pub use stats::SimStats;
