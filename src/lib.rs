//! # lhws — Latency-Hiding Work Stealing
//!
//! A production-quality Rust reproduction of *Muller & Acar, "Latency-Hiding
//! Work Stealing: Scheduling Interacting Parallel Computations with Work
//! Stealing" (SPAA 2016)*.
//!
//! This facade crate re-exports the four subsystems:
//!
//! * [`dag`] — the weighted computation-dag model: builders, work/span/
//!   suspension-width metrics, offline schedulers, workload generators.
//! * [`deque`] — the work-stealing deque substrate: a from-scratch Chase–Lev
//!   deque, a mutex oracle, and the global deque registry.
//! * [`sim`] — a deterministic round-based simulator executing the paper's
//!   Figure 3 pseudocode on weighted dags with any number of virtual workers.
//! * [`runtime`] — the real thing: a multithreaded latency-hiding
//!   work-stealing executor for suspendable tasks, plus the blocking
//!   work-stealing baseline the paper compares against.
//! * [`net`] — an epoll reactor and TCP wrappers that turn kernel socket
//!   readiness into the runtime's suspension/resume machinery, so real
//!   network waits are heavy edges (see `examples/server.rs`).
//!
//! ## Quickstart
//!
//! ```
//! use lhws::runtime::{Runtime, fork2, simulate_latency};
//! use std::time::Duration;
//!
//! let rt = Runtime::builder().workers(4).build().unwrap();
//! let out = rt.block_on(async {
//!     // Two branches run in parallel; the right branch incurs latency
//!     // (e.g. waiting for a remote server) without blocking its worker.
//!     let (a, b) = fork2(
//!         async { (1..=10).sum::<u64>() },
//!         async {
//!             simulate_latency(Duration::from_millis(5)).await;
//!             42u64
//!         },
//!     )
//!     .await;
//!     a + b
//! });
//! assert_eq!(out, 97);
//! ```

#![warn(missing_docs)]

pub use lhws_core as runtime;
pub use lhws_dag as dag;
pub use lhws_deque as deque;
pub use lhws_net as net;
pub use lhws_sim as sim;

/// Crate version string, for tooling output headers.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
