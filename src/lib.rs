//! # lhws — Latency-Hiding Work Stealing
//!
//! A production-quality Rust reproduction of *Muller & Acar, "Latency-Hiding
//! Work Stealing: Scheduling Interacting Parallel Computations with Work
//! Stealing" (SPAA 2016)*.
//!
//! This facade is the blessed API surface: runtime construction
//! ([`Runtime`], [`RuntimeBuilder`], [`Config`]), structured parallelism
//! ([`spawn`], [`fork2`], [`par_map_reduce`], [`join_all`]), latency
//! operations ([`simulate_latency`], [`external_op`], [`DeadlineExt`]),
//! [`channel`]s, and the observability entry points ([`trace`], [`fault`],
//! [`Metrics`]). Live introspection of a running runtime goes through
//! [`Runtime::observe`] — metrics snapshots, incremental
//! [`TraceReader`]s, continuous invariant audits ([`LiveAudit`]), and
//! the Prometheus exporter — with the self-hosted `/metrics` HTTP
//! endpoint in [`obs`]. Import from `lhws::` (or [`prelude`]) rather
//! than from the implementation crates — the facade is what stays
//! stable.
//!
//! Subsystems with their own vocabularies keep a module each:
//!
//! * [`dag`] — the weighted computation-dag model: builders, work/span/
//!   suspension-width metrics, offline schedulers, workload generators.
//! * [`sim`] — a deterministic round-based simulator executing the paper's
//!   Figure 3 pseudocode on weighted dags with any number of virtual workers.
//! * [`net`] — an epoll reactor and TCP wrappers that turn kernel socket
//!   readiness into the runtime's suspension/resume machinery, so real
//!   network waits are heavy edges (see `examples/server.rs`).
//!
//! ## Quickstart
//!
//! ```
//! use lhws::prelude::*;
//! use std::time::Duration;
//!
//! let rt = Runtime::builder().workers(4).build().unwrap();
//! let out = rt.block_on(async {
//!     // Two branches run in parallel; the right branch incurs latency
//!     // (e.g. waiting for a remote server) without blocking its worker.
//!     let (a, b) = fork2(
//!         async { (1..=10).sum::<u64>() },
//!         async {
//!             simulate_latency(Duration::from_millis(5)).await;
//!             42u64
//!         },
//!     )
//!     .await;
//!     a + b
//! });
//! assert_eq!(out, 97);
//! ```

#![warn(missing_docs)]

// ---------------------------------------------------------------------
// The blessed flat surface.
// ---------------------------------------------------------------------

pub use lhws_core::{
    // Observability.
    audit,
    // Latency-incurring operations and deadlines.
    external_op,
    // Structured parallelism.
    fork2,
    join_all,
    latency_until,
    par_map_reduce,
    simulate_latency,
    spawn,
    yield_now,
    AuditReport,
    AuditState,
    Canceled,
    Completer,
    // Runtime construction and lifecycle.
    Config,
    ConfigError,
    DeadlineExt,
    DeadlineOp,
    ExternalOp,
    FaultPlan,
    FaultSite,
    JoinHandle,
    LatencyFuture,
    LatencyMode,
    LatencyProfile,
    LiveAudit,
    LiveStats,
    Metrics,
    MetricsSnapshot,
    Observer,
    OpError,
    RemoteService,
    Runtime,
    RuntimeBuilder,
    RuntimeError,
    ShutdownReport,
    StealPolicy,
    TimerKind,
    Trace,
    TraceBatch,
    TraceReader,
    TraceStats,
    YieldNow,
};

// Deque substrate knobs that surface through `Config`.
pub use lhws_deque::DequeKind;

// Module entry points with their own vocabularies.
pub use lhws_core::channel;
pub use lhws_core::driver;
pub use lhws_core::external;
pub use lhws_core::fault;
pub use lhws_core::trace;

pub use lhws_dag as dag;
pub use lhws_net as net;
pub use lhws_obs as obs;
pub use lhws_sim as sim;

/// One-line import for applications: `use lhws::prelude::*;`.
///
/// Pulls in the runtime handle and builder types, the structured-parallelism
/// combinators, latency operations, the [`DeadlineExt`] bounding trait, and
/// the channel constructors.
pub mod prelude {
    pub use crate::channel::{mpsc, oneshot};
    pub use crate::{
        external_op, fork2, join_all, par_map_reduce, simulate_latency, spawn, yield_now, Config,
        DeadlineExt, JoinHandle, LatencyMode, LatencyProfile, RemoteService, Runtime,
        RuntimeBuilder, StealPolicy,
    };
}

// ---------------------------------------------------------------------
// Legacy aliases (kept one release; migrate to the flat surface above).
// ---------------------------------------------------------------------

#[deprecated(
    since = "0.1.0",
    note = "import from the `lhws::` root (e.g. `lhws::Runtime`) or `lhws::prelude` instead"
)]
pub use lhws_core as runtime;

#[deprecated(
    since = "0.1.0",
    note = "the deque substrate is internal; the blessed knob is `lhws::DequeKind`"
)]
pub use lhws_deque as deque;

/// Crate version string, for tooling output headers.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
