//! A stream-processing pipeline over message channels.
//!
//! ```text
//! cargo run --release --example stream_pipeline [-- items]
//! ```
//!
//! Interacting parallel computations, literally: four pipeline stages
//! connected by mpsc channels, fed by an external producer thread (the
//! "network"). Each stage's receive suspends through the latency-hiding
//! machinery when its queue is empty — the worker moves on to other stages
//! instead of blocking — so a handful of workers can drive many stages plus
//! the fork-join work the stages spawn internally.
//!
//! Pipeline: ingest → parse → enrich (fork-join per item) → aggregate.

use std::time::{Duration, Instant};

use lhws::channel::mpsc;
use lhws::{fork2, spawn, Config, Runtime};

fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let items: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(500);

    let rt = Runtime::new(Config::default().workers(4)).unwrap();

    // Stage channels.
    let (raw_tx, mut raw_rx) = mpsc::<String>();
    let (parsed_tx, mut parsed_rx) = mpsc::<u64>();
    let (enriched_tx, mut enriched_rx) = mpsc::<(u64, u64)>();

    // The outside world: a plain OS thread feeding the first stage.
    let producer = std::thread::spawn(move || {
        for i in 0..items {
            raw_tx.send(format!("event:{i}")).unwrap();
            if i % 64 == 0 {
                std::thread::sleep(Duration::from_millis(1)); // bursty source
            }
        }
    });

    let start = Instant::now();
    let (count, checksum) = rt.block_on(async move {
        // Stage 1: parse "event:<n>" into n.
        let parse = spawn(async move {
            while let Some(line) = raw_rx.recv().await {
                let n: u64 = line.strip_prefix("event:").unwrap().parse().unwrap();
                parsed_tx.send(n).unwrap();
            }
            // Dropping parsed_tx closes the downstream channel.
        });

        // Stage 2: enrich each event with a fork-join computation.
        let enrich = spawn(async move {
            while let Some(n) = parsed_rx.recv().await {
                let (a, b) = fork2(async move { fib(12 + (n % 5)) }, async move {
                    (n * 2654435761) % 1000
                })
                .await;
                enriched_tx.send((n, a + b)).unwrap();
            }
        });

        // Stage 3: aggregate.
        let mut count = 0u64;
        let mut checksum = 0u64;
        while let Some((_n, score)) = enriched_rx.recv().await {
            count += 1;
            checksum = checksum.wrapping_add(score);
        }
        parse.await;
        enrich.await;
        (count, checksum)
    });
    let elapsed = start.elapsed();
    producer.join().unwrap();

    assert_eq!(count, items);
    println!("processed {count} events in {elapsed:?} (checksum {checksum:x})");
    let m = rt.metrics();
    println!(
        "stage receives suspended {} times, resumed {}; deques allocated: {}",
        m.suspensions, m.resumes, m.deques_allocated
    );
}
