//! Explore the simulator: run the paper's workload families through the
//! round-accurate LHWS simulator and print their structural parameters,
//! execution statistics, and the theorem bounds next to each other.
//!
//! ```text
//! cargo run --release --example sim_explorer
//! ```

use lhws::dag::gen::{fib, map_reduce, pipeline, scatter_gather, server};
use lhws::dag::offline::{greedy_bound, greedy_schedule};
use lhws::dag::{suspension_width, Metrics};
use lhws::sim::speedup::{run_lhws, run_ws};
use lhws::sim::{LhwsSim, SimConfig};

fn main() {
    let workloads = vec![
        map_reduce(64, 100, 8, 1),
        server(30, 50, 8, 1),
        fib(14, 4),
        pipeline(8, 4, 40, 2),
        scatter_gather(64, 200, 4),
    ];

    for wl in workloads {
        let dag = &wl.dag;
        let m = Metrics::compute(dag);
        let u = suspension_width(dag);
        println!("── {} ──", wl.name);
        println!(
            "   W = {}, S = {}, U = {} (expected {}), heavy edges = {}, parallelism ≈ {:.1}",
            m.work,
            m.span,
            u,
            wl.expected_u,
            m.heavy_edges,
            m.parallelism_x100 as f64 / 100.0
        );
        assert_eq!(u, wl.expected_u);

        // Offline greedy (Theorem 1).
        let g = greedy_schedule(dag, 8);
        println!(
            "   greedy @P=8:   {:>8} rounds   (Theorem 1 bound W/P + S = {})",
            g.length,
            greedy_bound(dag, 8)
        );

        // Online LHWS vs blocking WS (the paper's comparison).
        for p in [1usize, 4, 8] {
            let lh = run_lhws(dag, p, 7);
            let ws = run_ws(dag, p, 7);
            println!(
                "   P={p}: LHWS {:>8} rounds ({} steals, ≤{} deques/worker) | WS {:>8} rounds",
                lh.rounds, lh.steal_attempts, lh.max_deques_per_worker, ws.rounds
            );
            assert!(lh.max_deques_per_worker <= u + 1, "Lemma 7");
        }
        println!();
    }
    println!("all Lemma 7 checks passed");

    // A timeline of latency hiding in action: 4 workers on a map-reduce
    // with long fetches. '#' = executing, 'p' = pfor, '-' = deque switch,
    // 's'/'.' = steal hit/miss, ' ' = idle.
    let wl = map_reduce(32, 300, 16, 2);
    println!("\n── timeline: {} on 4 workers ──", wl.name);
    let stats = LhwsSim::new(&wl.dag, SimConfig::new(4).seed(3).trace(true)).run();
    let trace = stats.trace.expect("trace enabled");
    print!("{}", trace.timeline_ascii(100));
    for (w, u) in trace.utilization().iter().enumerate() {
        println!(
            "w{w}: {}% busy ({} exec, {} pfor, {} switch, {}/{} steals hit)",
            u.busy_pct(trace.rounds),
            u.executes,
            u.pfors,
            u.switches,
            u.steals_hit,
            u.steals_hit + u.steals_missed,
        );
    }
}
