//! Distributed map-and-reduce — the paper's Figure 8, run for real.
//!
//! ```text
//! cargo run --release --example distributed_map_reduce [-- n delta_ms fib_n]
//! ```
//!
//! `n` values live on remote servers (simulated by [`RemoteService`] with a
//! fixed round-trip latency). Each is fetched (`getValue` — may suspend!),
//! mapped through `f` (a naive Fibonacci, as in the paper's evaluation),
//! and the results are combined with an associative `g` up a balanced
//! fork-join tree. All `n` fetches can be outstanding at once, so the
//! suspension width is `n` — the paper's maximal-`U` example.
//!
//! The example runs the identical program under latency-hiding and
//! blocking work stealing and prints both times.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lhws::{par_map_reduce, Config, LatencyMode, LatencyProfile, RemoteService, Runtime};

fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

const MODULUS: u64 = 1_000_000_007;

fn run(workers: usize, mode: LatencyMode, n: u64, delta: Duration, fib_n: u64) -> Duration {
    let rt = Runtime::new(Config::default().workers(workers).mode(mode)).unwrap();
    let svc = Arc::new(RemoteService::new("values", LatencyProfile::Fixed(delta)));
    let start = Instant::now();
    let sum = rt.block_on(async move {
        par_map_reduce(
            0,
            n,
            move |i| {
                let svc = svc.clone();
                async move {
                    // x = getValue(i): fetch from the remote server; the
                    // task suspends for the round trip in Hide mode.
                    let x = svc.request(i, |k| k).await;
                    // return f(x)
                    fib(fib_n).wrapping_add(x) % MODULUS
                }
            },
            // g(res1, res2)
            |a, b| (a + b) % MODULUS,
            0,
        )
        .await
    });
    let elapsed = start.elapsed();
    let expect = (0..n).fold(0u64, |acc, i| {
        (acc + (fib(fib_n).wrapping_add(i) % MODULUS)) % MODULUS
    });
    assert_eq!(sum, expect, "checksum");
    elapsed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(128);
    let delta_ms: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(50);
    let fib_n: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);
    let delta = Duration::from_millis(delta_ms);
    let workers = 4;

    println!("distMapReduce: n={n}, delta={delta_ms}ms, f=fib({fib_n}), P={workers}");
    println!("suspension width U = n = {n}\n");

    let hide = run(workers, LatencyMode::Hide, n, delta, fib_n);
    println!("latency-hiding work stealing: {hide:?}");

    let block = run(workers, LatencyMode::Block, n, delta, fib_n);
    println!("blocking work stealing:       {block:?}");

    let ratio = block.as_secs_f64() / hide.as_secs_f64();
    println!("\nLHWS is {ratio:.1}x faster on this configuration");
    println!(
        "(lower bound for WS: n*delta/P = {:?}; LHWS needs ~one delta = {:?})",
        delta * (n as u32) / workers as u32,
        delta
    );
}
