//! The "server" — the paper's Figure 10, run for real.
//!
//! ```text
//! cargo run --release --example server [-- requests delta_ms f_work]
//! ```
//!
//! The server takes inputs one at a time from a (simulated) user:
//! `getInput()` incurs latency. For each input it forks `f(input)` in
//! parallel with the recursive server, and the results are reduced with
//! `g` as the recursion unwinds. Only one `getInput` is ever outstanding,
//! so the suspension width is 1 — the paper's minimal-`U` example — and
//! the worker pool stays busy computing earlier `f(input)` work while the
//! next input is awaited.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lhws::runtime::{fork2, Config, LatencyMode, LatencyProfile, RemoteService, Runtime};

fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

/// server(f, g) from Figure 10: read an input; if "Done" return 0, else
/// fork f(input) alongside the recursive server and combine with g.
fn server(
    user: Arc<RemoteService>,
    remaining: u64,
    f_cost: u64,
) -> std::pin::Pin<Box<dyn std::future::Future<Output = u64> + Send>> {
    Box::pin(async move {
        // input = getInput() — may suspend.
        let input = user.request(remaining, |k| k).await;
        if remaining == 0 {
            return 0; // the user typed "Done"
        }
        let (res1, res2) = fork2(
            // f(input): process the request (models real work).
            async move { fib(f_cost).wrapping_add(input) },
            // server(f, g): wait for the next request in parallel.
            server(user.clone(), remaining - 1, f_cost),
        )
        .await;
        // g(res1, res2)
        res1.wrapping_add(res2)
    })
}

fn run(mode: LatencyMode, requests: u64, delta: Duration, f_cost: u64) -> (Duration, u64) {
    let rt = Runtime::new(Config::default().workers(2).mode(mode)).unwrap();
    let user = Arc::new(RemoteService::new("user", LatencyProfile::Fixed(delta)));
    let start = Instant::now();
    let total = rt.block_on(server(user, requests, f_cost));
    (start.elapsed(), total)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let requests: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(20);
    let delta_ms: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(25);
    let f_cost: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(24);
    let delta = Duration::from_millis(delta_ms);

    println!("server: {requests} requests, getInput latency {delta_ms}ms, f=fib({f_cost})");
    println!("suspension width U = 1 (inputs arrive one at a time)\n");

    let (hide, v1) = run(LatencyMode::Hide, requests, delta, f_cost);
    println!("latency-hiding work stealing: {hide:?}");

    let (block, v2) = run(LatencyMode::Block, requests, delta, f_cost);
    println!("blocking work stealing:       {block:?}");
    assert_eq!(v1, v2, "same answers under both schedulers");

    // The input latencies are sequential and sit on the critical path, so
    // no scheduler can beat requests × delta; what LHWS buys is doing the
    // f(input) work *during* the waits instead of after them.
    println!(
        "\ncritical-path latency (unavoidable): {:?}",
        delta * requests as u32
    );
}
