//! The paper's server (Figure 10) on real sockets: a TCP request/reply
//! server whose network waits are heavy edges through the epoll reactor.
//!
//! ```text
//! cargo run --release --example server -- [--port P] [--workers N]
//!     [--mode hide|block] [--conns C] [--fib-cutoff K] [--trace] [--obs]
//! ```
//!
//! Protocol (newline-delimited): a client sends `W <n>`; the server
//! computes `fib(n)` with the CPU work split across the pool via `fork2`
//! and replies `R <value>`. Each accepted connection is served by its own
//! spawned task until the peer closes, so the suspension width `U` is the
//! number of connections currently blocked on the kernel — every one of
//! them a live deque the scheduler keeps under Lemma 7's `U + 1` bound.
//!
//! The server accepts exactly `--conns` connections, joins every
//! per-connection task, shuts the runtime down, and exits nonzero if
//! anything was left unbalanced (leaked suspensions, canceled I/O waits,
//! or — with `--trace` — an audit violation).
//!
//! With `--obs` the server also self-hosts the observability endpoint on
//! an ephemeral port (printed as `obs listening on <addr>`): `curl
//! http://<addr>/metrics` scrapes Prometheus text served by a task on
//! the same runtime that is serving the fib traffic.

use std::process::ExitCode;

use lhws::net::{LineReader, Reactor, TcpListener};
use lhws::obs::ObsServer;
use lhws::{fork2, spawn, Config, LatencyMode, Runtime};

fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

/// `fib(n)` with the top of the recursion forked, so each request's CPU
/// work is stealable parallel work rather than one serial blob.
async fn par_fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = fork2(async move { fib(n - 1) }, async move { fib(n - 2) }).await;
    a + b
}

struct Args {
    port: u16,
    workers: usize,
    mode: LatencyMode,
    conns: usize,
    trace: bool,
    obs: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 0,
        workers: 4,
        mode: LatencyMode::Hide,
        conns: 8,
        trace: false,
        obs: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--port" => args.port = val("--port")?.parse().map_err(|e| format!("--port: {e}"))?,
            "--workers" => {
                args.workers = val("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--mode" => {
                args.mode = match val("--mode")?.as_str() {
                    "hide" => LatencyMode::Hide,
                    "block" => LatencyMode::Block,
                    other => return Err(format!("--mode: unknown mode {other:?}")),
                };
            }
            "--conns" => {
                args.conns = val("--conns")?
                    .parse()
                    .map_err(|e| format!("--conns: {e}"))?;
            }
            "--trace" => args.trace = true,
            "--obs" => args.obs = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Serves one connection: read `W <n>` lines, reply `R <fib(n)>`, until
/// the peer closes. Returns the number of requests served.
async fn serve_conn(stream: lhws::net::TcpStream) -> std::io::Result<u64> {
    let mut reader = LineReader::new(stream);
    let mut served = 0u64;
    while let Some(line) = reader.read_line().await? {
        let n: u64 = line
            .strip_prefix("W ")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad request line {line:?}")))?;
        let v = par_fib(n).await;
        let reply = format!("R {v}\n");
        reader.stream_mut().write_all(reply.as_bytes()).await?;
        served += 1;
    }
    Ok(served)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("server: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = Config::default().workers(args.workers).mode(args.mode);
    if args.trace {
        cfg = cfg.trace_capacity(1 << 16);
    }
    let rt = match Runtime::new(cfg) {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("server: runtime: {e}");
            return ExitCode::FAILURE;
        }
    };
    let reactor = match Reactor::new(&rt) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("server: reactor: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The blessed audit path: an incremental auditor registered up
    // front. Its unpolled cursor pins ring reclamation, so the shutdown
    // drain still carries every event — including those the obs
    // endpoint's own stats reader has already consumed.
    let live_audit = if args.trace {
        Some(rt.observe().audit_incremental().expect("tracing is on"))
    } else {
        None
    };
    let obs = if args.obs {
        match ObsServer::serve(&rt, &reactor, ("127.0.0.1", 0)) {
            Ok(server) => {
                // Scrapers grep for this line to learn the port.
                println!("obs listening on {}", server.local_addr());
                Some(server)
            }
            Err(e) => {
                eprintln!("server: obs endpoint: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let conns = args.conns;
    let served = rt.block_on(async move {
        let listener = TcpListener::bind(&reactor, ("127.0.0.1", args.port))?;
        let addr = listener.local_addr()?;
        // The load generator greps for this line to learn the port.
        println!("listening on {addr}");
        let mut handles = Vec::with_capacity(conns);
        for _ in 0..conns {
            let (stream, _peer) = listener.accept().await?;
            handles.push(spawn(serve_conn(stream)));
        }
        let mut total = 0u64;
        for h in handles {
            total += h.await?;
        }
        std::io::Result::Ok(total)
    });
    let served = match served {
        Ok(n) => n,
        Err(e) => {
            eprintln!("server: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(server) = obs {
        let scrapes = server.stop(&rt);
        println!("obs served {scrapes} connections");
    }
    let report = rt.shutdown();
    println!(
        "served {served} requests over {conns} connections; \
         {} io registrations, {} readiness events",
        report.metrics.io_registrations, report.metrics.io_readiness_events
    );
    let mut ok = true;
    if report.leaked_suspensions != 0 || report.canceled_io_waits != 0 {
        eprintln!(
            "server: unclean shutdown: {} leaked suspensions, {} canceled io waits",
            report.leaked_suspensions, report.canceled_io_waits
        );
        ok = false;
    }
    if let Some(mut la) = live_audit {
        let trace = report.trace.as_ref().expect("tracing was enabled");
        la.observe_trace(trace);
        let audit_report = la.report();
        println!("{audit_report}");
        if !audit_report.passed() {
            eprintln!("server: trace audit failed");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
