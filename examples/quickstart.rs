//! Quickstart: fork-join parallelism plus a latency-incurring operation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The program mirrors the paper's Figure 1: one branch computes
//! (`6 * 7`), the other asks an external agent for a number — which takes
//! a while — doubles it, and the results are added at the join. Under
//! latency-hiding work stealing the waiting branch suspends instead of
//! blocking its worker, so the computation proceeds at full speed.

use std::time::{Duration, Instant};

use lhws::{fork2, simulate_latency, LatencyMode, Runtime};

fn main() {
    // A 2-worker latency-hiding runtime, with scheduler tracing on.
    let rt = Runtime::builder()
        .workers(2)
        .trace_capacity(1 << 16)
        .build()
        .unwrap();

    let start = Instant::now();
    let result = rt.block_on(async {
        let (y, x) = fork2(
            // Left branch: pure computation.
            async { 6 * 7 },
            // Right branch: "x = input()" — a simulated user who takes
            // 100 ms to answer "15", then "x = 2 * x".
            async {
                simulate_latency(Duration::from_millis(100)).await;
                let x = 15;
                2 * x
            },
        )
        .await;
        x + y
    });
    println!("x + y = {result}  (in {:?})", start.elapsed());
    assert_eq!(result, 72);

    // The same program under the blocking baseline behaves identically
    // here (a single latency can't be overlapped with anything), but
    // metrics show the difference in mechanism:
    let m = rt.metrics();
    println!(
        "suspensions: {}, resumes: {}, deques allocated: {}",
        m.suspensions, m.resumes, m.deques_allocated
    );

    // Run 64 of those user interactions at once: latency hiding finishes
    // in ~one round trip, not 64.
    let start = Instant::now();
    let total = rt.block_on(async {
        let handles: Vec<_> = (0..64)
            .map(|i| {
                lhws::spawn(async move {
                    simulate_latency(Duration::from_millis(100)).await;
                    i
                })
            })
            .collect();
        let mut sum = 0u64;
        for h in handles {
            sum += h.await;
        }
        sum
    });
    let hidden = start.elapsed();
    println!("64 concurrent interactions, hidden: {total} in {hidden:?}");
    assert!(hidden < Duration::from_millis(1000));

    // Shut down and inspect the trace: suspension-latency histograms,
    // steal success rate, and the Lemma 7 deque high-water mark. The
    // Chrome-trace JSON loads in chrome://tracing or ui.perfetto.dev.
    let report = rt.shutdown();
    let trace = report.trace.expect("tracing was enabled");
    println!("\n{}", trace.stats());
    let mut json = Vec::new();
    trace.export_chrome(&mut json).unwrap();
    println!(
        "(Chrome trace: {} bytes; write it to a file to view)",
        json.len()
    );

    // And the blocking baseline for contrast (2 workers block on each op).
    let rt_block = Runtime::builder()
        .workers(2)
        .mode(LatencyMode::Block)
        .build()
        .unwrap();
    let start = Instant::now();
    rt_block.block_on(async {
        let handles: Vec<_> = (0..8) // only 8: blocking 64 would take 3.2 s
            .map(|i| {
                lhws::spawn(async move {
                    simulate_latency(Duration::from_millis(100)).await;
                    i
                })
            })
            .collect();
        for h in handles {
            h.await;
        }
    });
    println!(
        "8 interactions under blocking work stealing: {:?} (≈ 8×100ms / 2 workers)",
        start.elapsed()
    );
}
