//! A parallel web crawler over a synthetic site graph.
//!
//! ```text
//! cargo run --release --example web_crawler [-- pages latency_max_ms]
//! ```
//!
//! The motivating workload class from the paper's introduction:
//! applications that "communicate with external agents such as the user,
//! the file system, a remote client or server". Fetching a page incurs
//! network latency (simulated, uniform per URL); parsing it yields links
//! that are crawled in parallel. Thousands of fetches can be in flight —
//! a large, *dynamic* suspension width that no static schedule could
//! anticipate, which is exactly what the online scheduler handles.
//!
//! The synthetic "web" is a deterministic graph: page `p` links to
//! `2p + 1` and `2p + 2` while they are below the page count (a binary
//! tree plus a few cross links), so results are checkable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lhws::{fork2, Config, LatencyMode, LatencyProfile, RemoteService, Runtime};

struct Web {
    pages: u64,
    net: RemoteService,
    fetched: AtomicU64,
}

impl Web {
    /// "Downloads" page `p`: network latency, then returns its links.
    async fn fetch(&self, p: u64) -> Vec<u64> {
        let links = self
            .net
            .request(p, |p| {
                let mut ls = Vec::new();
                for c in [2 * p + 1, 2 * p + 2] {
                    if c < self.pages {
                        ls.push(c);
                    }
                }
                ls
            })
            .await;
        self.fetched.fetch_add(1, Ordering::Relaxed);
        links
    }
}

/// Crawls `page` and, in parallel, everything reachable from it. Returns
/// the number of pages crawled in this subtree.
fn crawl(
    web: Arc<Web>,
    page: u64,
) -> std::pin::Pin<Box<dyn std::future::Future<Output = u64> + Send>> {
    Box::pin(async move {
        let links = web.fetch(page).await;
        match links.as_slice() {
            [] => 1,
            [only] => 1 + crawl(web.clone(), *only).await,
            [a, b] => {
                let (ca, cb) = fork2(crawl(web.clone(), *a), crawl(web.clone(), *b)).await;
                1 + ca + cb
            }
            _ => unreachable!("synthetic web has <= 2 links per page"),
        }
    })
}

fn run(mode: LatencyMode, pages: u64, max_ms: u64) -> (Duration, u64) {
    let rt = Runtime::new(Config::default().workers(4).mode(mode)).unwrap();
    let web = Arc::new(Web {
        pages,
        net: RemoteService::new(
            "httpd",
            LatencyProfile::Uniform(Duration::from_millis(1), Duration::from_millis(max_ms)),
        ),
        fetched: AtomicU64::new(0),
    });
    let w2 = web.clone();
    let start = Instant::now();
    let crawled = rt.block_on(async move { crawl(w2, 0).await });
    let elapsed = start.elapsed();
    assert_eq!(crawled, pages, "every page crawled exactly once");
    assert_eq!(web.fetched.load(Ordering::Relaxed), pages);
    (elapsed, crawled)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pages: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(511);
    let max_ms: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20);

    println!("crawling a synthetic web of {pages} pages, 1–{max_ms}ms per fetch, P=4\n");

    let (hide, n) = run(LatencyMode::Hide, pages, max_ms);
    println!("latency-hiding work stealing: {n} pages in {hide:?}");

    let (block, n) = run(LatencyMode::Block, pages, max_ms);
    println!("blocking work stealing:       {n} pages in {block:?}");

    println!(
        "\nLHWS kept up to hundreds of fetches in flight; WS at most 4 (one per worker).\n\
         speed ratio: {:.1}x",
        block.as_secs_f64() / hide.as_secs_f64()
    );
}
